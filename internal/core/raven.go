package core

import (
	"container/list"
	"math"
	"time"

	"raven/internal/cache"
	"raven/internal/nn"
	"raven/internal/nn/ckpt"
	"raven/internal/obs"
	"raven/internal/stats"
)

// objHist is an object's arrival-history state. Raven keeps it across
// evictions (like LRB's feature store): an object that re-enters the
// cache resumes with its learned history instead of a cold embedding.
type objHist struct {
	lastSeen   int64
	size       int64
	hist       []float64 // ring of recent interarrival times, oldest first
	emb        []float64 // history embedding h (§4.2.1)
	embVersion int       // nn.Net.Version the embedding was computed with; -1 = stale
	elem       *list.Element

	// Score-cache state (fastpath.go). epoch increments every time the
	// object's history advances; a cached score is valid while both its
	// epoch stamp and its model-version stamp still match, so a score
	// survives across decisions exactly until the object is touched or
	// the model is swapped.
	epoch    int64
	score    float64 // cached priority: predicted next-arrival time (ticks)
	scoreEp  int64   // epoch the score was computed at
	scoreVer int     // nn.Net.Version the score was computed with; -1 = never
}

// Raven is the learning cache policy. Create it with New; it
// implements cache.Policy and falls back to LRU until its first model
// is trained (§4.1).
type Raven struct {
	cfg Config
	net *nn.Net
	rng *stats.RNG

	hists map[cache.Key]*objHist // global history store
	set   *cache.SampledSet[*objHist]
	ll    *list.List // LRU order of resident objects (fallback phase)
	now   int64
	start int64
	begun bool

	window *window
	drift  *driftDetector

	// Eviction fan-out state. pool runs the per-candidate embed+predict
	// and MC sampling loops; infNets/infPred are one shadow network and
	// prediction scratch per worker (rebuilt lazily after a model swap);
	// candTask is the pre-bound candidate closure so Victim never
	// allocates one.
	pool     *nn.Pool
	infNets  []*nn.Net
	infPred  []*nn.PredictScratch
	candTask func(w, j int)
	mc       *mcScratch

	// Fast-path inference state (fastpath.go): the frozen f32 weight
	// copy and its scratch (Inference32), the serial f64 batch scratch,
	// and the per-decision SLO overrun streak.
	frozen    *nn.Frozen32
	scr32     *nn.Scratch32
	pred      *nn.PredictScratch
	sloStreak int
	// forceRescore treats every candidate as dirty — test hook that
	// turns the fast path into its own uncached reference.
	forceRescore bool

	// Scratch buffers reused across evictions.
	scrIdx   []int
	scrMix   []nn.Mixture
	scrKeys  []cache.Key
	scrSize  []int64
	scrScore []float64
	scrObj   []*objHist
	scrDirty []int
	scrIn    []nn.PredictInput
	scrCum   []float64

	// Prefetch state (prefetch.go): the bounded queue of predicted
	// re-arrivals, the cascade-suppression flag set while the engine
	// drains it, and the persistent mixture scratch for the
	// closed-form next-arrival predictions (no RNG draws).
	pfq      []prefetchEntry
	draining bool
	predMix  nn.Mixture

	// Model-lifecycle state (health.go): the health state machine,
	// the consecutive-guard-trip counter that drives it, lifecycle
	// metrics, and the checkpoint store.
	health    Health
	trips     int
	obs       *obs.RavenObs
	store     *ckpt.Store
	completed int // non-skipped, non-diverged trainings (checkpoint cadence)

	// TrainStats records every completed training run (Table 7 and the
	// overhead discussion of §6.1.1).
	TrainStats []TrainRecord

	// HealthLog records every health transition, oldest first.
	HealthLog []HealthTransition

	// CkptResume reports what checkpoint resume found at
	// construction; CkptErr holds the most recent checkpoint
	// save/load error (checkpointing is best-effort and never fails
	// the policy).
	CkptResume ckpt.LoadInfo
	CkptErr    error
}

// TrainRecord captures one training window's dataset and outcome.
type TrainRecord struct {
	WindowEnd int64
	Objects   int
	Samples   int // total loss terms (interarrival + survival)
	// Skipped marks windows whose retraining was elided by drift
	// detection (Config.DriftThreshold).
	Skipped bool
	// RolledBack marks windows whose training diverged (the guard
	// tripped) and whose weights were rolled back to the last good
	// network; Result.GuardReason says why.
	RolledBack bool
	Result     nn.TrainResult
}

// New returns a Raven policy. cfg.TrainWindow must be positive.
func New(cfg Config) *Raven {
	cfg.defaults()
	if cfg.TrainWindow <= 0 {
		panic("core: Config.TrainWindow must be positive") //lint:allow no-panic invalid Config is a construction-time programmer error
	}
	r := &Raven{
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed),
		hists: make(map[cache.Key]*objHist, 4096),
		set:   cache.NewSampledSet[*objHist](),
		ll:    list.New(),
		pool:  nn.NewPool(cfg.Workers),
	}
	r.candTask = r.candidateTask
	r.mc = newMCScratch(r.pool)
	r.window = newWindow(cfg.SampleBudgetBytes, cfg.MaxTrainObjects, cfg.Train.MaxSeq, stats.NewRNG(cfg.Seed+3))
	if cfg.DriftThreshold > 0 {
		r.drift = newDriftDetector(cfg.DriftThreshold, 0)
	}
	r.obs = cfg.Obs
	if r.obs != nil {
		r.obs.Health.Set(int64(Healthy))
	}
	r.resumeCheckpoint()
	return r
}

// resumeCheckpoint opens the configured checkpoint store and installs
// the newest valid generation, skipping corrupt ones. Failures are
// recorded (CkptErr, raven.ckpt_* metrics) but never propagate: a
// cache that cannot read its checkpoints starts cold, it does not
// crash.
func (r *Raven) resumeCheckpoint() {
	if r.cfg.Checkpoint.Dir == "" {
		return
	}
	st, err := ckpt.Open(r.cfg.Checkpoint.Dir, ckpt.Options{Prefix: "raven", Keep: r.cfg.Checkpoint.Keep})
	if err != nil {
		r.ckptError(err)
		return
	}
	r.store = st
	net, info, err := st.LoadNewest()
	r.CkptResume = info
	if r.obs != nil && info.CorruptSkipped > 0 {
		r.obs.CkptCorruptSkipped.Add(int64(info.CorruptSkipped))
	}
	if err != nil {
		r.ckptError(err)
		return
	}
	if net != nil {
		// The resumed net's embedded nn.Config (TimeScale, dims)
		// supersedes cfg.Net — it describes the weights being loaded.
		r.net = net
	}
}

// ckptError records a best-effort checkpoint failure.
func (r *Raven) ckptError(err error) {
	r.CkptErr = err
	if r.obs != nil {
		r.obs.CkptErrors.Inc()
	}
}

// saveCheckpoint persists the model after a completed training,
// honoring the Checkpoint.Every cadence.
func (r *Raven) saveCheckpoint() {
	if r.store == nil || r.net == nil {
		return
	}
	r.completed++
	if r.completed%r.cfg.Checkpoint.Every != 0 {
		return
	}
	if _, err := r.store.Save(r.net); err != nil {
		r.ckptError(err)
		return
	}
	if r.obs != nil {
		r.obs.CkptSaves.Inc()
	}
}

// Name implements cache.Policy.
func (r *Raven) Name() string {
	if r.cfg.Goal == GoalOHR {
		return "raven-ohr"
	}
	return "raven"
}

// MetadataBytesPerObject implements cache.Footprinter: the per-cached-
// object state Raven keeps for inference — the recurrent state
// (float64s), last-access time, size, the interarrival ring used
// to re-embed after model swaps (§6.1.1), and the score-cache stamps
// (epoch, cached score, epoch/version stamps).
func (r *Raven) MetadataBytesPerObject() int64 {
	state := int64(r.cfg.Net.Hidden)
	if r.net != nil {
		state = int64(r.net.StateSize())
	}
	return 8*state + 8 + 8 + 8*int64(r.cfg.HistoryLen) + 4*8
}

// Trained reports whether at least one model has been fit.
func (r *Raven) Trained() bool { return r.net != nil }

// Net returns the current model (nil before the first training).
func (r *Raven) Net() *nn.Net { return r.net }

// observe advances virtual time, maintains the object's history and
// embedding, collects training data, and retrains at window
// boundaries. It runs once per request (hit or miss).
func (r *Raven) observe(req cache.Request) {
	if !r.begun {
		r.begun = true
		r.start = req.Time
		r.window.reset(req.Time)
	}
	r.now = req.Time
	r.draining = false // any aborted prefetch insertion is over by the next request
	r.window.record(req)

	h, ok := r.hists[req.Key]
	if !ok {
		h = &objHist{lastSeen: req.Time, size: req.Size, embVersion: -1, scoreVer: -1}
		r.hists[req.Key] = h
		r.maybeGC()
	} else {
		h.epoch++ // history advances below: any cached score is now stale
		tau := float64(req.Time - h.lastSeen)
		if tau < 1 {
			tau = 1
		}
		if r.drift != nil {
			r.drift.observe(tau)
		}
		pushHist(&h.hist, tau, r.cfg.HistoryLen)
		if r.net != nil && h.embVersion == r.net.Version {
			r.net.StepEmbed(h.emb, tau)
		}
		h.lastSeen = req.Time
		h.size = req.Size
	}

	if req.Time-r.window.start >= r.cfg.TrainWindow {
		r.train()
		r.window.reset(req.Time)
	}
}

// maybeGC bounds the global history store: non-resident objects not
// seen for two training windows are dropped.
func (r *Raven) maybeGC() {
	if len(r.hists) < 8*r.set.Len()+200000 {
		return
	}
	horizon := r.now - 2*r.cfg.TrainWindow
	for k, h := range r.hists {
		if h.elem == nil && h.lastSeen < horizon {
			delete(r.hists, k)
		}
	}
}

// train fits the MDN on the just-finished window (§4.4), unless drift
// detection decides the previous model still matches the workload.
func (r *Raven) train() {
	data, terms := r.window.sequences(r.now)
	if len(data) == 0 {
		return
	}
	retrain := true
	if r.drift != nil {
		// Always close the drift window so consecutive windows are
		// compared pairwise, even before the first model exists.
		retrain = r.drift.shouldRetrain()
	}
	if r.net != nil && !retrain {
		r.TrainStats = append(r.TrainStats, TrainRecord{
			WindowEnd: r.now,
			Objects:   len(data),
			Samples:   terms,
			Skipped:   true,
		})
		return
	}
	// A network with non-finite weights (corrupt resume that slipped
	// validation, runtime overflow) cannot be trained out of NaN —
	// discard it and fit fresh. Counted as a rollback: the "last good
	// network" here is none.
	if r.net != nil && !r.net.FiniteWeights() {
		r.net = nil
		r.infNets = nil
		r.infPred = nil
		r.invalidateFastPath()
		if r.obs != nil {
			r.obs.Rollbacks.Inc()
		}
	}
	prev := r.net // last good network; the rollback target
	replaced := false
	if r.net == nil || r.cfg.ColdStart {
		cfg := r.cfg.Net
		if cfg.TimeScale == 0 { //lint:allow float-equal zero TimeScale means unset; derive the default
			cfg.TimeScale = meanTau(data, float64(r.cfg.TrainWindow)/1000)
		}
		r.net = nn.NewNet(cfg)
		if prev != nil {
			r.net.Version = prev.Version
		}
		// Inference shadows alias the old network's weights; rebuild
		// them lazily against the new one.
		r.infNets = nil
		r.infPred = nil
		r.invalidateFastPath()
		replaced = true
	}
	// Pre-fit snapshot: the rollback token for warm-start windows
	// (windows that built a fresh net roll back to prev instead).
	var snap [][]float64
	if !replaced {
		snap = r.net.WeightsCopy()
	}
	tc := r.cfg.Train
	tc.Seed += int64(len(r.TrainStats)) // vary shuffles between windows
	if tc.Faults != nil && r.cfg.TrainFaultWindows > 0 && len(r.TrainStats) >= r.cfg.TrainFaultWindows {
		tc.Faults = nil // fault drill over; train clean from here on
	}
	res := r.net.Fit(data, tc)
	rec := TrainRecord{
		WindowEnd: r.now,
		Objects:   len(data),
		Samples:   terms,
		Result:    res,
	}
	if res.Diverged {
		// Fit already restored the fitted network's pre-fit weights
		// bit-identically; rolling back means re-installing the last
		// good network (which, for warm starts, is that same
		// snapshot).
		if replaced {
			r.net = prev
		} else {
			r.net.RestoreWeightsCopy(snap)
		}
		r.infNets = nil
		r.infPred = nil
		r.invalidateFastPath()
		rec.RolledBack = true
		if r.obs != nil {
			r.obs.Rollbacks.Inc()
		}
		r.guardTripped("training diverged: " + res.GuardReason)
	} else {
		r.trainSucceeded()
		r.saveCheckpoint()
		r.invalidateFastPath()
		if r.cfg.ScoreCache && r.cfg.Inference32 {
			// Quantize the freshly fitted weights now, off the decision
			// path, so the first post-swap eviction pays no freeze.
			r.frozen = r.net.Freeze32()
		}
	}
	r.TrainStats = append(r.TrainStats, rec)
}

// meanTau averages the finite, positive interarrival times of the
// window. Zeros left by the degenerate-interarrival clamp and any
// non-finite value are excluded so a pathological window can never
// poison the derived TimeScale; with nothing usable the fallback
// (itself sanitized) is returned.
func meanTau(data []nn.Sequence, fallback float64) float64 {
	if fallback <= 0 || math.IsInf(fallback, 0) || math.IsNaN(fallback) {
		fallback = 1
	}
	s, n := 0.0, 0
	for i := range data {
		for _, t := range data[i].Taus {
			if t <= 0 || math.IsInf(t, 0) || math.IsNaN(t) {
				continue
			}
			s += t
			n++
		}
	}
	if n == 0 {
		return fallback
	}
	m := s / float64(n)
	if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		return fallback
	}
	return m
}

// OnHit implements cache.Policy.
func (r *Raven) OnHit(req cache.Request) {
	r.observe(req)
	if h, ok := r.hists[req.Key]; ok && h.elem != nil {
		r.ll.MoveToFront(h.elem)
	}
}

// OnMiss implements cache.Policy.
func (r *Raven) OnMiss(req cache.Request) { r.observe(req) }

// OnAdmit implements cache.Policy. Prefetch insertions arrive here
// without a preceding OnMiss, and the object's history may have been
// GC'd while it sat in the queue, so a missing entry is recreated.
func (r *Raven) OnAdmit(req cache.Request) {
	h, ok := r.hists[req.Key] // created by the preceding OnMiss
	if !ok {
		h = &objHist{lastSeen: req.Time, size: req.Size, embVersion: -1, scoreVer: -1}
		r.hists[req.Key] = h
	}
	h.elem = r.ll.PushFront(req.Key)
	r.set.Add(req.Key, h)
	r.draining = false // the prefetch insertion (if any) has landed
}

// OnEvict implements cache.Policy. The object's history survives
// eviction; only residency state is dropped — and, with prefetching
// armed, the evictee is considered for the re-warm queue while its
// history is still at hand.
func (r *Raven) OnEvict(key cache.Key) {
	if h, ok := r.set.Get(key); ok {
		r.maybeEnqueuePrefetch(key, h)
		r.ll.Remove(h.elem)
		h.elem = nil
		r.set.Remove(key)
	}
}

// Victim implements cache.Policy: the §4.4 eviction rule. Before the
// first model is trained — and whenever the health state machine is
// in Fallback — it falls back to LRU over the resident list. With
// Config.ScoreCache on, the decision runs through the cached-score
// fast path (fastpath.go); with Config.DecisionBudget armed, a
// decision that overruns its deadline is abandoned to LRU and counted
// (health.go sloOverrun).
//
//lint:allow determinism-taint the DecisionBudget deadline is the SLO feature itself; the clock can only influence the decision when Config.DecisionBudget > 0, which deterministic-replay configurations leave at 0
func (r *Raven) Victim() (cache.Key, bool) {
	if r.set.Len() == 0 {
		return 0, false
	}
	if r.net == nil || r.health == Fallback {
		return r.fallbackVictim(), true
	}
	if r.cfg.ScoreCache {
		return r.victimFast()
	}
	budget := r.cfg.DecisionBudget
	var deadline time.Time
	if budget > 0 {
		//lint:allow hot-path-purity the clock read IS the per-decision SLO; armed only when DecisionBudget > 0
		deadline = time.Now().Add(budget) //lint:allow wall-clock the DecisionBudget deadline is the SLO feature; replay configurations leave the budget at 0
	}
	r.prepareCandidates()
	n := len(r.scrKeys)
	// Runtime sanity gate: a single non-finite mixture parameter
	// means the model's output can no longer be trusted to order
	// candidates — enter Fallback now and evict by LRU instead of
	// comparing NaNs.
	for j := 0; j < n; j++ {
		if !mixtureFinite(&r.scrMix[j]) {
			r.scoresInsane()
			return r.fallbackVictim(), true
		}
	}
	// Candidate-loop boundary: embed+predict is done, the estimator is
	// next. A decision already past its deadline abandons to LRU here
	// instead of paying the Monte Carlo (or quadrature) pass.
	if r.overBudget(budget, deadline) {
		r.sloOverrun()
		return r.fallbackVictim(), true
	}
	if n == 1 {
		if budget > 0 {
			r.sloMet()
		}
		return r.scrKeys[0], true
	}
	if r.cfg.ExactPriority {
		scores := PriorityScoresExact(r.scrMix, 256)
		best := -1.0
		victim := r.scrKeys[0]
		for j := 0; j < n; j++ {
			score := scores[j]
			if r.cfg.Goal == GoalOHR {
				score *= float64(r.scrSize[j])
			}
			if score > best {
				best = score
				victim = r.scrKeys[j]
			}
		}
		if budget > 0 {
			r.sloMet()
		}
		return victim, true
	}
	// Monte Carlo estimator (Eq. 1c): the win count is the score up to
	// the constant 1/M factor, which cannot change the argmax, so the
	// hot path skips the normalization (and any scores slice).
	wins := r.mc.winsMC(r.scrMix, r.cfg.ResidualSamples, r.rng)
	best := -1.0
	victim := r.scrKeys[0]
	for j := 0; j < n; j++ {
		score := float64(wins[j])
		if r.cfg.Goal == GoalOHR {
			score *= float64(r.scrSize[j])
		}
		if score > best {
			best = score
			victim = r.scrKeys[j]
		}
	}
	if budget > 0 {
		r.sloMet()
	}
	return victim, true
}

// candidateTask prepares candidate slot j: it refreshes the object's
// embedding if a model swap made it stale, predicts the residual-time
// mixture, and records the key and size. It runs on pool workers —
// each worker uses its own shadow network and prediction scratch, and
// the task writes only j-addressed slots (distinct sampled indices
// hold distinct *objHist, so the in-place embedding refresh is
// race-free). Results are bit-identical for any worker count because
// shadows alias the master's weights.
func (r *Raven) candidateTask(w, j int) {
	k, hp := r.set.At(r.scrIdx[j])
	h := *hp
	net := r.infNets[w]
	if h.embVersion != r.net.Version {
		h.emb = net.EmbedHistoryInto(h.emb, h.hist)
		h.embVersion = r.net.Version
	}
	age := float64(r.now - h.lastSeen)
	net.PredictWith(r.infPred[w], h.emb, float64(h.size), age, &r.scrMix[j])
	r.scrKeys[j] = k
	r.scrSize[j] = h.size
}

// prepareCandidates samples eviction candidates and fans their
// embed+predict work out over the pool, one indexed slot per
// candidate.
func (r *Raven) prepareCandidates() {
	r.scrIdx = r.set.Sample(r.rng, r.cfg.CandidateSample, r.scrIdx)
	n := len(r.scrIdx)
	if cap(r.scrMix) < n {
		//lint:allow hot-path-purity cap-guarded scratch growth; amortized to zero allocs at steady state
		r.scrMix = make([]nn.Mixture, n)
		r.scrKeys = make([]cache.Key, n)
		r.scrSize = make([]int64, n)
	}
	r.scrMix = r.scrMix[:n]
	r.scrKeys = r.scrKeys[:n]
	r.scrSize = r.scrSize[:n]
	if r.infNets == nil {
		w := r.pool.Workers()
		r.infNets = make([]*nn.Net, w)
		r.infPred = make([]*nn.PredictScratch, w)
		for k := range r.infNets {
			r.infNets[k] = r.net.Shadow()
			r.infPred[k] = r.net.NewPredictScratch()
		}
	}
	r.pool.ParallelFor(n, r.candTask)
}

// fallbackVictim evicts the LRU-list tail, counting the eviction when
// it happened because of degraded health (rather than the normal
// before-first-model warmup).
func (r *Raven) fallbackVictim() cache.Key {
	if r.health == Fallback && r.obs != nil {
		r.obs.FallbackEvictions.Inc()
	}
	return r.ll.Back().Value.(cache.Key)
}

// mixtureFinite reports whether every parameter of the predicted
// mixture is finite. Allocation-free (the eviction path must stay
// zero-alloc).
func mixtureFinite(m *nn.Mixture) bool {
	for _, v := range m.W {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, v := range m.Mu {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, v := range m.S {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func cumWeights(w []float64, dst []float64) []float64 {
	dst = dst[:0]
	acc := 0.0
	for _, wi := range w {
		acc += wi
		//lint:allow hot-path-purity appends into caller-owned per-worker scratch; grows once then is reused
		dst = append(dst, acc)
	}
	return dst
}

// sampleLogResidual draws the LOG of a residual-time sample from the
// mixture. Since log is monotone, comparing log-samples across
// candidates gives the same argmax as comparing the samples
// themselves, and skipping the exp saves ~30% of eviction time.
func sampleLogResidual(m *nn.Mixture, cum []float64, g *stats.RNG) float64 {
	u := g.Float64()
	k := len(cum) - 1
	for i, c := range cum {
		if u <= c {
			k = i
			break
		}
	}
	return m.Mu[k] + m.S[k]*g.NormFloat64()
}

// pushHist appends tau to a bounded ring kept as a slice.
func pushHist(h *[]float64, tau float64, max int) {
	s := *h
	if len(s) == max {
		copy(s, s[1:])
		s[len(s)-1] = tau
		return
	}
	*h = append(s, tau)
}
