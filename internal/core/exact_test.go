package core

import (
	"testing"

	"raven/internal/cache"
	"raven/internal/nn"
	"raven/internal/trace"
)

// TestExactPriorityEviction runs Raven with the Eq. 1b quadrature rule
// (small candidate set to keep the O(n²·grid) cost bounded) and checks
// the Monte Carlo rule converges to it as M grows — the policy-level
// analogue of the estimator-convergence test in priority.go.
//
// Interesting regime note: at small M the MC rule can *outperform* the
// exact rule under a weakly-trained model, because estimator noise
// diversifies evictions away from systematic model bias. The paper's
// M=100 default sits in the regime where the estimator has converged
// (Fig. 6) while retaining a little of that jitter.
func TestExactPriorityEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	tr := trace.Synthetic(trace.SynthConfig{
		Objects: 200, Requests: 30000, Interarrival: trace.Uniform, Seed: 21,
	})
	run := func(exact bool, m int) float64 {
		cfg := Config{
			TrainWindow:     tr.Duration() / 4,
			CandidateSample: 8,
			ResidualSamples: m,
			ExactPriority:   exact,
			MaxTrainObjects: 300,
			Net:             nn.Config{Hidden: 8, MLPHidden: 12, K: 4},
			Train:           nn.TrainConfig{MaxEpochs: 8, Patience: 3},
			Seed:            23,
		}
		c := cache.New(40, New(cfg))
		hits := 0
		for i, r := range tr.Reqs {
			if c.Handle(r) && i > len(tr.Reqs)/2 {
				hits++
			}
		}
		return float64(hits) / float64(len(tr.Reqs)/2)
	}
	exact := run(true, 50)
	mcConverged := run(false, 1000)
	if d := exact - mcConverged; d < -0.03 || d > 0.03 {
		t.Errorf("exact (%.4f) and converged MC (%.4f) rules diverge by %.4f", exact, mcConverged, d)
	}
}
