package gbm

import (
	"math"
	"testing"

	"raven/internal/stats"
)

func TestConstantTarget(t *testing.T) {
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		X[i] = []float64{float64(i), float64(i % 7)}
		y[i] = 3.5
	}
	m := Train(X, y, Config{Trees: 5, Seed: 1})
	for i := range X {
		if math.Abs(m.Predict(X[i])-3.5) > 1e-9 {
			t.Fatalf("constant target mispredicted: %v", m.Predict(X[i]))
		}
	}
}

func TestLearnsStepFunction(t *testing.T) {
	g := stats.NewRNG(2)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := g.Float64() * 10
		X[i] = []float64{x, g.Float64()}
		if x > 5 {
			y[i] = 10
		} else {
			y[i] = -10
		}
	}
	m := Train(X, y, Config{Trees: 40, MaxDepth: 3, Seed: 3})
	if mse := m.MSE(X, y); mse > 2 {
		t.Errorf("step function MSE %v too high", mse)
	}
	if m.Predict([]float64{8, 0.5}) < 5 {
		t.Error("high side mispredicted")
	}
	if m.Predict([]float64{2, 0.5}) > -5 {
		t.Error("low side mispredicted")
	}
}

func TestLearnsAdditiveFunction(t *testing.T) {
	g := stats.NewRNG(4)
	n := 4000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := g.Float64()*4, g.Float64()*4
		X[i] = []float64{a, b, g.Float64()}
		y[i] = 2*a - 3*b
	}
	m := Train(X, y, Config{Trees: 120, MaxDepth: 4, LearningRate: 0.15, Seed: 5})
	var baseVar float64
	mean := stats.Mean(y)
	for _, v := range y {
		baseVar += (v - mean) * (v - mean)
	}
	baseVar /= float64(n)
	if mse := m.MSE(X, y); mse > baseVar*0.1 {
		t.Errorf("additive MSE %v vs variance %v: model barely learned", mse, baseVar)
	}
}

func TestIrrelevantFeatureIgnored(t *testing.T) {
	g := stats.NewRNG(6)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := g.Float64()
		X[i] = []float64{g.Float64() /* noise */, x}
		y[i] = 5 * x
	}
	m := Train(X, y, Config{Trees: 50, MaxDepth: 3, Seed: 7})
	imp := m.FeatureImportance(2)
	if imp[1] < imp[0] {
		t.Errorf("informative feature importance %v should exceed noise %v", imp[1], imp[0])
	}
}

func TestMSEDecreasesWithTrees(t *testing.T) {
	g := stats.NewRNG(8)
	n := 1000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := g.Float64() * 6
		X[i] = []float64{x}
		y[i] = math.Sin(x)
	}
	small := Train(X, y, Config{Trees: 3, Seed: 9})
	big := Train(X, y, Config{Trees: 60, Seed: 9})
	if big.MSE(X, y) >= small.MSE(X, y) {
		t.Errorf("more trees should fit better: %v vs %v", big.MSE(X, y), small.MSE(X, y))
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty input")
		}
	}()
	Train(nil, nil, Config{})
}

func TestDeterministicTraining(t *testing.T) {
	g := stats.NewRNG(10)
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{g.Float64(), g.Float64()}
		y[i] = X[i][0] + X[i][1]
	}
	a := Train(X, y, Config{Trees: 20, Seed: 11})
	b := Train(X, y, Config{Trees: 20, Seed: 11})
	for i := 0; i < 50; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same seed should produce identical models")
		}
	}
}
