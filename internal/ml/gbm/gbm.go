// Package gbm is a from-scratch gradient boosting machine (regression
// trees, squared loss) — the learning substrate of the LRB and LHR
// baselines, standing in for LightGBM in the original systems. It uses
// histogram-based split finding on quantile-binned features, the same
// strategy as modern GBM implementations.
package gbm

import (
	"sort"

	"raven/internal/stats"
)

// Config controls training.
type Config struct {
	Trees        int     // boosting rounds (default 30)
	MaxDepth     int     // tree depth (default 4)
	LearningRate float64 // shrinkage (default 0.1)
	MinLeaf      int     // minimum samples per leaf (default 20)
	Subsample    float64 // per-tree row subsampling in (0,1]; default 0.8
	Bins         int     // histogram bins per feature (default 64, max 255)
	Seed         int64
}

func (c *Config) defaults() {
	if c.Trees == 0 {
		c.Trees = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.LearningRate == 0 { //lint:allow float-equal zero LearningRate means unset; fill the default
		c.LearningRate = 0.1
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 20
	}
	if c.Subsample == 0 { //lint:allow float-equal zero Subsample means unset; fill the default
		c.Subsample = 0.8
	}
	if c.Bins == 0 {
		c.Bins = 64
	}
	if c.Bins > 255 {
		c.Bins = 255
	}
}

type node struct {
	feature   int
	threshold float64 // split on x[feature] <= threshold
	left      int32   // child indices; -1 for leaf
	right     int32
	value     float64 // leaf prediction
}

type tree struct{ nodes []node }

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.left < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	cfg   Config
	bias  float64
	trees []tree
}

// NumTrees returns the number of boosting rounds kept.
func (m *Model) NumTrees() int { return len(m.trees) }

// Predict returns the model output for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	y := m.bias
	for i := range m.trees {
		y += m.cfg.LearningRate * m.trees[i].predict(x)
	}
	return y
}

// Train fits a squared-loss GBM to (X, y). Rows of X must share a
// length. It panics on empty or ragged input.
func Train(X [][]float64, y []float64, cfg Config) *Model {
	cfg.defaults()
	if len(X) == 0 || len(X) != len(y) {
		panic("gbm: bad training data") //lint:allow no-panic mismatched training matrices are a programmer error
	}
	nf := len(X[0])
	m := &Model{cfg: cfg, bias: stats.Mean(y)}
	g := stats.NewRNG(cfg.Seed)

	// Quantile binning per feature.
	edges := make([][]float64, nf)
	binned := make([][]uint8, len(X))
	for f := 0; f < nf; f++ {
		vals := make([]float64, len(X))
		for i := range X {
			vals[i] = X[i][f]
		}
		edges[f] = quantileEdges(vals, cfg.Bins)
	}
	for i := range X {
		row := make([]uint8, nf)
		for f := 0; f < nf; f++ {
			row[f] = uint8(binOf(edges[f], X[i][f]))
		}
		binned[i] = row
	}

	residual := make([]float64, len(y))
	for i := range y {
		residual[i] = y[i] - m.bias
	}

	rows := make([]int, len(X))
	for t := 0; t < cfg.Trees; t++ {
		rows = rows[:0]
		for i := range X {
			if cfg.Subsample >= 1 || g.Float64() < cfg.Subsample {
				rows = append(rows, i)
			}
		}
		if len(rows) < 2*cfg.MinLeaf {
			break
		}
		tr := buildTree(binned, edges, residual, rows, cfg)
		m.trees = append(m.trees, tr)
		for i := range X {
			residual[i] -= cfg.LearningRate * tr.predict(X[i])
		}
	}
	return m
}

func quantileEdges(vals []float64, bins int) []float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	var edges []float64
	for b := 1; b < bins; b++ {
		v := s[b*len(s)/bins]
		if len(edges) == 0 || v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	return edges
}

// binOf returns the bin index of v: number of edges strictly below v.
func binOf(edges []float64, v float64) int {
	return sort.SearchFloat64s(edges, v) // edges[i-1] < v <= edges[i]
}

func buildTree(binned [][]uint8, edges [][]float64, target []float64, rows []int, cfg Config) tree {
	var t tree
	t.grow(binned, edges, target, rows, cfg, 0)
	return t
}

// grow builds a subtree over rows and returns its node index.
func (t *tree) grow(binned [][]uint8, edges [][]float64, target []float64, rows []int, cfg Config, depth int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{left: -1, right: -1})

	sum := 0.0
	for _, r := range rows {
		sum += target[r]
	}
	mean := sum / float64(len(rows))
	t.nodes[idx].value = mean
	if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinLeaf {
		return idx
	}

	nf := len(binned[rows[0]])
	bestGain := 0.0
	bestF, bestBin := -1, -1
	maxBins := cfg.Bins + 1
	cnt := make([]int, maxBins)
	sums := make([]float64, maxBins)
	for f := 0; f < nf; f++ {
		for b := 0; b < maxBins; b++ {
			cnt[b], sums[b] = 0, 0
		}
		for _, r := range rows {
			b := binned[r][f]
			cnt[b]++
			sums[b] += target[r]
		}
		leftCnt, leftSum := 0, 0.0
		for b := 0; b < maxBins-1; b++ {
			leftCnt += cnt[b]
			leftSum += sums[b]
			rightCnt := len(rows) - leftCnt
			if leftCnt < cfg.MinLeaf || rightCnt < cfg.MinLeaf {
				continue
			}
			rightSum := sum - leftSum
			// Variance-reduction gain (up to constants):
			gain := leftSum*leftSum/float64(leftCnt) + rightSum*rightSum/float64(rightCnt) - sum*sum/float64(len(rows))
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestF, bestBin = f, b
			}
		}
	}
	if bestF < 0 || bestBin >= len(edges[bestF]) {
		return idx
	}

	var lrows, rrows []int
	for _, r := range rows {
		if int(binned[r][bestF]) <= bestBin {
			lrows = append(lrows, r)
		} else {
			rrows = append(rrows, r)
		}
	}
	if len(lrows) == 0 || len(rrows) == 0 {
		return idx
	}
	t.nodes[idx].feature = bestF
	t.nodes[idx].threshold = edges[bestF][bestBin]
	l := t.grow(binned, edges, target, lrows, cfg, depth+1)
	r := t.grow(binned, edges, target, rrows, cfg, depth+1)
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

// MSE returns the mean squared error of the model on (X, y).
func (m *Model) MSE(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	s := 0.0
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

// FeatureImportance returns per-feature split gains normalized to sum
// to 1 (crude but useful for the explainability discussion).
func (m *Model) FeatureImportance(nf int) []float64 {
	imp := make([]float64, nf)
	for i := range m.trees {
		for _, n := range m.trees[i].nodes {
			if n.left >= 0 && n.feature < nf {
				imp[n.feature]++
			}
		}
	}
	t := 0.0
	for _, v := range imp {
		t += v
	}
	if t > 0 {
		for i := range imp {
			imp[i] /= t
		}
	}
	return imp
}
