package cost

import "testing"

func TestTable4Savings(t *testing.T) {
	rows := Table4(4, 2)
	if len(rows) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(rows))
	}
	for _, s := range rows {
		if s.RavenMonthly <= 0 || s.LRUMonthly <= 0 {
			t.Errorf("%s: non-positive cost", s.Name)
		}
		if s.Savings() <= 0 {
			t.Errorf("%s: with 2-4x capacity ratios Raven should be cheaper (savings %.2f)",
				s.Name, s.Savings())
		}
		if s.Savings() >= 1 {
			t.Errorf("%s: savings %.2f impossible", s.Name, s.Savings())
		}
	}
}

func TestRatioOneCanFavorLRU(t *testing.T) {
	// With no capacity advantage, Raven's GPU trainer makes it at
	// least as expensive.
	s := InMemoryCluster(1)
	if s.Savings() > 0 {
		t.Errorf("ratio 1 should not yield savings, got %.2f", s.Savings())
	}
}

func TestSavingsMonotoneInRatio(t *testing.T) {
	prev := -1.0
	for _, ratio := range []float64{1.5, 2, 3, 4} {
		s := CDNClusterSSD(ratio)
		if s.Savings() <= prev {
			t.Errorf("savings should grow with capacity ratio: %.3f at %.1fx", s.Savings(), ratio)
		}
		prev = s.Savings()
	}
}

func TestStringFormatting(t *testing.T) {
	if s := InMemoryCluster(4).String(); s == "" {
		t.Error("empty String()")
	}
}
