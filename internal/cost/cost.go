// Package cost reproduces the paper's Table 4: a simplified AWS VM
// cost comparison between cache clusters running Raven (smaller
// capacity + one GPU training server) and LRU (2–4× the capacity to
// match Raven's hit ratio). Prices are the paper's 2022 on-demand
// figures, embedded as constants; the capacity ratios come from
// measured hit-ratio curves.
package cost

import "fmt"

// Monthly on-demand prices (USD) used by the paper (AWS, 2022).
const (
	priceT4gMicro    = 6.05   // ElastiCache t4g.micro, ~1.37 GB RAM
	priceT4gSmall    = 23.65  // ElastiCache t4g.small, ~3.09 GB
	priceT4gMedium   = 47.30  // ElastiCache t4g.medium, ~6.38 GB
	priceT3Medium    = 30.37  // EC2 t3.medium
	priceEBSPerGB    = 0.08   // gp3 per GB-month
	priceG4dn2xlarge = 950.00 // Wavelength g4dn.2xlarge (SSD-backed)
	priceG4adXlarge  = 275.00 // EC2 g4ad.xlarge GPU trainer
)

// Scenario describes one cluster comparison row of Table 4.
type Scenario struct {
	Name string
	// CapacityRatio is how much more capacity LRU needs to match
	// Raven's hit ratio (measured; the paper uses 4× in-memory, 2× CDN).
	CapacityRatio float64
	RavenMonthly  float64
	LRUMonthly    float64
}

// Savings returns Raven's relative cost reduction.
func (s Scenario) Savings() float64 {
	if s.LRUMonthly == 0 { //lint:allow float-equal exact zero baseline guards the division below
		return 0
	}
	return 1 - s.RavenMonthly/s.LRUMonthly
}

// InMemoryCluster prices the ElastiCache scenario: Raven at 32 GB of
// RAM across t4g.micro nodes plus a GPU trainer, LRU at
// ratio × 32 GB across t4g.small/medium nodes.
func InMemoryCluster(ratio float64) Scenario {
	const ravenGB = 32.0
	ravenNodes := ravenGB / 0.5 // 0.5 GB usable per t4g.micro
	raven := ravenNodes*priceT4gMicro + priceG4adXlarge

	lruGB := ravenGB * ratio
	// Split LRU capacity across small and medium nodes as the paper
	// does (41 small + 23 medium for 128 GB).
	smallNodes := lruGB * 0.32
	mediumNodes := lruGB * 0.18
	lru := smallNodes*priceT4gSmall + mediumNodes*priceT4gMedium
	return Scenario{Name: "in-memory", CapacityRatio: ratio, RavenMonthly: raven, LRUMonthly: lru}
}

// CDNClusterEBS prices the EBS-backed CDN scenario: both clusters use
// 100 t3.medium frontends; capacity costs scale with EBS size.
func CDNClusterEBS(ratio float64) Scenario {
	const ravenTB = 12.8
	base := 100 * priceT3Medium
	raven := base + ravenTB*1024*priceEBSPerGB + priceG4adXlarge
	lru := base + ravenTB*ratio*1024*priceEBSPerGB
	return Scenario{Name: "cdn-ebs", CapacityRatio: ratio, RavenMonthly: raven, LRUMonthly: lru}
}

// CDNClusterSSD prices the SSD (Wavelength) scenario: node count
// scales with capacity because SSD size is fixed per instance.
func CDNClusterSSD(ratio float64) Scenario {
	const ravenNodes = 57.0
	return Scenario{
		Name:          "cdn-ssd",
		CapacityRatio: ratio,
		RavenMonthly:  ravenNodes*priceG4dn2xlarge + priceG4adXlarge,
		LRUMonthly:    ravenNodes * ratio * priceG4dn2xlarge,
	}
}

// Table4 builds the three scenarios with the given measured capacity
// ratios (in-memory, CDN).
func Table4(inMemRatio, cdnRatio float64) []Scenario {
	return []Scenario{
		InMemoryCluster(inMemRatio),
		CDNClusterEBS(cdnRatio),
		CDNClusterSSD(cdnRatio),
	}
}

// String formats a scenario row.
func (s Scenario) String() string {
	return fmt.Sprintf("%-10s ratio=%.1fx raven=$%.0f/mo lru=$%.0f/mo savings=%.1f%%",
		s.Name, s.CapacityRatio, s.RavenMonthly, s.LRUMonthly, 100*s.Savings())
}
