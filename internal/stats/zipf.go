package stats

import (
	"math"
	"sort"
)

// Zipf samples ranks from a (generalized) Zipf distribution with any
// exponent alpha > 0, including alpha <= 1 which math/rand's Zipf
// cannot express. Probability of rank i (0-based) is proportional to
// 1/(i+1)^alpha. Sampling is by inverse-CDF binary search over a
// precomputed table, O(log n) per draw.
type Zipf struct {
	cdf   []float64
	probs []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
// It panics if n <= 0 or alpha < 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0") //lint:allow no-panic invalid n is a construction-time programmer error
	}
	if alpha < 0 {
		panic("stats: Zipf needs alpha >= 0") //lint:allow no-panic invalid alpha is a construction-time programmer error
	}
	z := &Zipf{cdf: make([]float64, n), probs: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		z.probs[i] = 1 / math.Pow(float64(i+1), alpha)
		sum += z.probs[i]
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
		z.probs[i] /= sum
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 { return z.probs[i] }

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(g *RNG) int {
	u := g.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
