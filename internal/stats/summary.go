package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedPercentile(s, p)
}

func sortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Summary holds the descriptive statistics reported by the paper's
// tables (e.g. Table 6's rank-order error statistics).
type Summary struct {
	Count    int
	Mean     float64
	Median   float64
	P90      float64
	P99      float64
	Min      float64
	Max      float64
	Variance float64
	StdDev   float64
}

// Summarize computes a Summary of xs in a single sort.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := Summary{
		Count:  len(s),
		Mean:   Mean(s),
		Median: sortedPercentile(s, 50),
		P90:    sortedPercentile(s, 90),
		P99:    sortedPercentile(s, 99),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
	sum.Variance = Variance(s)
	sum.StdDev = math.Sqrt(sum.Variance)
	return sum
}

// CDFPoint is one (x, F(x)) point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF of xs evaluated at every distinct
// value, suitable for plotting figures such as the paper's Fig. 3.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var pts []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] { //lint:allow float-equal collapses exact duplicates in sorted samples; bit-exact by design
			continue
		}
		pts = append(pts, CDFPoint{X: s[i], F: float64(i+1) / n})
	}
	return pts
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	i := sort.Search(len(cdf), func(i int) bool { return cdf[i].X > x })
	if i == 0 {
		return 0
	}
	return cdf[i-1].F
}
