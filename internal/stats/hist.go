package stats

import (
	"fmt"
	"math"
)

// LogHistogram accumulates weighted counts into logarithmically spaced
// bins, as used by the paper's Fig. 17/18 analysis of requests and
// requested bytes over object-size and object-frequency ranges.
type LogHistogram struct {
	base    float64
	lo      float64
	weights []float64
	under   float64
}

// NewLogHistogram creates a histogram whose i-th bin covers
// [lo*base^i, lo*base^(i+1)). Values below lo are accumulated in an
// underflow bucket. It panics on non-positive lo or base <= 1.
func NewLogHistogram(lo, base float64, bins int) *LogHistogram {
	if lo <= 0 || base <= 1 || bins <= 0 {
		panic("stats: invalid LogHistogram parameters") //lint:allow no-panic invalid histogram shape is a construction-time programmer error
	}
	return &LogHistogram{base: base, lo: lo, weights: make([]float64, bins)}
}

// Add accumulates weight w at value v, extending into the last bin for
// overflow values.
func (h *LogHistogram) Add(v, w float64) {
	if v < h.lo {
		h.under += w
		return
	}
	i := int(math.Log(v/h.lo) / math.Log(h.base))
	if i >= len(h.weights) {
		i = len(h.weights) - 1
	}
	h.weights[i] += w
}

// Bins returns the number of bins (excluding underflow).
func (h *LogHistogram) Bins() int { return len(h.weights) }

// Weight returns the accumulated weight of bin i.
func (h *LogHistogram) Weight(i int) float64 { return h.weights[i] }

// Underflow returns the weight accumulated below the lowest bin edge.
func (h *LogHistogram) Underflow() float64 { return h.under }

// BinLo returns the lower edge of bin i.
func (h *LogHistogram) BinLo(i int) float64 {
	return h.lo * math.Pow(h.base, float64(i))
}

// Total returns the total accumulated weight including underflow.
func (h *LogHistogram) Total() float64 {
	t := h.under
	for _, w := range h.weights {
		t += w
	}
	return t
}

// Label returns a human-readable range label for bin i, e.g.
// "[1.0e+03, 1.0e+04)".
func (h *LogHistogram) Label(i int) string {
	return fmt.Sprintf("[%.1e, %.1e)", h.BinLo(i), h.BinLo(i+1))
}

// Fractions returns each bin's share of the total weight. Underflow is
// excluded from the returned slice but included in the denominator.
func (h *LogHistogram) Fractions() []float64 {
	t := h.Total()
	out := make([]float64, len(h.weights))
	if t == 0 { //lint:allow float-equal exact zero total guards the division below
		return out
	}
	for i, w := range h.weights {
		out[i] = w / t
	}
	return out
}
