package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give identical streams")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(1)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += g.Exponential(3.5)
	}
	got := sum / float64(n)
	if math.Abs(got-3.5) > 0.05 {
		t.Errorf("exponential mean %v, want ~3.5", got)
	}
}

func TestParetoMeanMatched(t *testing.T) {
	g := NewRNG(2)
	sum := 0.0
	n := 500000
	for i := 0; i < n; i++ {
		sum += g.ParetoMean(2.5, 10)
	}
	got := sum / float64(n)
	if math.Abs(got-10)/10 > 0.05 {
		t.Errorf("pareto mean %v, want ~10", got)
	}
}

func TestParetoScalePositive(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(1.5, 2); v < 2 {
			t.Fatalf("pareto sample %v below scale", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(4)
	for _, mean := range []float64{0.5, 5, 100} {
		sum := 0.0
		n := 100000
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Errorf("poisson(%v) mean %v", mean, got)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRNG(5)
	n := 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.LogNormal(2, 0.5)
	}
	med := Percentile(xs, 50)
	want := math.Exp(2.0)
	if math.Abs(med-want)/want > 0.05 {
		t.Errorf("lognormal median %v, want ~%v", med, want)
	}
}

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(100, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
		if i > 0 && z.Prob(i) > z.Prob(i-1) {
			t.Fatalf("zipf probs must be non-increasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("zipf probs sum to %v", sum)
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	z := NewZipf(10, 1.0)
	g := NewRNG(6)
	counts := make([]int, 10)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(g)]++
	}
	for i := 0; i < 10; i++ {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-z.Prob(i)) > 0.01 {
			t.Errorf("rank %d frequency %v, want %v", i, got, z.Prob(i))
		}
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z := NewZipf(4, 0)
	for i := 0; i < 4; i++ {
		if math.Abs(z.Prob(i)-0.25) > 1e-12 {
			t.Errorf("alpha=0 rank %d prob %v, want 0.25", i, z.Prob(i))
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if math.Abs(s.Variance-2) > 1e-12 {
		t.Errorf("variance %v, want 2", s.Variance)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary should be zero: %+v", s)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.NormFloat64()
		}
		p50 := Percentile(xs, 50)
		p90 := Percentile(xs, 90)
		min := Percentile(xs, 0)
		max := Percentile(xs, 100)
		return min <= p50 && p50 <= p90 && p90 <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.Float64() * 10
		}
		cdf := CDF(xs)
		prev := 0.0
		for _, pt := range cdf {
			if pt.F < prev || pt.F > 1+1e-12 {
				return false
			}
			prev = pt.F
		}
		return math.Abs(cdf[len(cdf)-1].F-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := CDFAt(cdf, c.x); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 10, 5)
	h.Add(0.5, 1) // underflow
	h.Add(5, 2)   // bin 0
	h.Add(50, 3)  // bin 1
	h.Add(1e9, 4) // overflow -> last bin
	if h.Underflow() != 1 {
		t.Errorf("underflow %v", h.Underflow())
	}
	if h.Weight(0) != 2 || h.Weight(1) != 3 || h.Weight(4) != 4 {
		t.Errorf("weights wrong: %v %v %v", h.Weight(0), h.Weight(1), h.Weight(4))
	}
	if h.Total() != 10 {
		t.Errorf("total %v", h.Total())
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-0.9) > 1e-12 { // 1/10 went to underflow
		t.Errorf("fractions sum %v, want 0.9", sum)
	}
}

func TestReservoirUniformity(t *testing.T) {
	r := NewReservoir(100, 7)
	n := 100000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != int64(n) {
		t.Fatalf("seen %d", r.Seen())
	}
	if len(r.Items()) != 100 {
		t.Fatalf("kept %d items", len(r.Items()))
	}
	// The sample mean should approximate the stream mean.
	mean := Mean(r.Items())
	want := float64(n-1) / 2
	if math.Abs(mean-want)/want > 0.25 {
		t.Errorf("reservoir mean %v, want ~%v", mean, want)
	}
}
