package stats

// Reservoir maintains a uniform random sample of a stream of float64
// values using Vitter's Algorithm R. It is used to keep bounded-size
// latency and eviction-time samples during long simulations.
type Reservoir struct {
	cap   int
	seen  int64
	items []float64
	rng   *RNG
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic("stats: Reservoir capacity must be positive") //lint:allow no-panic non-positive capacity is a construction-time programmer error
	}
	return &Reservoir{cap: capacity, rng: NewRNG(seed)}
}

// Add offers v to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = v
	}
}

// Seen returns how many values have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Items returns the current sample. The returned slice is owned by the
// reservoir; callers must not modify it.
func (r *Reservoir) Items() []float64 { return r.items }

// Summary summarizes the current sample.
func (r *Reservoir) Summary() Summary { return Summarize(r.items) }
