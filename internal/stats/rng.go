// Package stats provides the statistical substrate shared by the rest
// of the repository: seeded random variate generation for the
// distributions used by the trace generators and by Raven's Monte
// Carlo eviction rule, summary statistics, percentiles, empirical
// CDFs, and log-binned histograms used by the trace analyzers.
//
// Everything is deterministic given a seed; no package-level mutable
// state is used, so independent generators never interfere.
package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the variate generators used throughout the
// repository. It is not safe for concurrent use; create one per
// goroutine.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Reseed resets the generator to the deterministic stream of seed, in
// place and without allocating. Parallel code uses it to give each
// work item its own stream from a scratch generator: seeds are drawn
// serially from a master RNG, then each item's variates depend only
// on its seed — never on which worker processed it — which is how the
// parallel training and eviction paths stay bit-exact for any worker
// count.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Int63 returns a uniform int64 in [0, 1<<63). Its main use is
// drawing per-item seeds for Reseed.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Uniform returns a variate uniform in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exponential returns an exponential variate with the given mean.
// It panics if mean <= 0.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exponential mean must be positive") //lint:allow no-panic non-positive mean is a programmer error, mirroring math/rand
	}
	return g.r.ExpFloat64() * mean
}

// Pareto returns a Pareto (type I) variate with shape alpha and the
// given scale (minimum value). The mean is scale*alpha/(alpha-1) for
// alpha > 1.
func (g *RNG) Pareto(alpha, scale float64) float64 {
	if alpha <= 0 || scale <= 0 {
		panic("stats: Pareto parameters must be positive") //lint:allow no-panic non-positive parameters are a programmer error, mirroring math/rand
	}
	u := g.r.Float64()
	for u == 0 { //lint:allow float-equal rejects an exact-zero uniform draw before taking its log
		u = g.r.Float64()
	}
	return scale * math.Pow(u, -1/alpha)
}

// ParetoMean returns a Pareto variate with shape alpha scaled so its
// expectation equals mean. For alpha <= 1 (infinite mean) the scale is
// chosen so the median equals mean instead, which keeps generated
// traces finite while preserving the heavy tail.
func (g *RNG) ParetoMean(alpha, mean float64) float64 {
	var scale float64
	if alpha > 1 {
		scale = mean * (alpha - 1) / alpha
	} else {
		scale = mean / math.Pow(2, 1/alpha) // median = scale * 2^(1/alpha)
	}
	return g.Pareto(alpha, scale)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Poisson returns a Poisson-distributed count with the given mean,
// using Knuth's method for small means and a normal approximation for
// large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := mean + math.Sqrt(mean)*g.r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GeometricMean returns a geometric variate (number of trials until
// first success, >= 1) parameterized by its mean >= 1.
func (g *RNG) GeometricMean(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := g.r.Float64()
	for u == 0 { //lint:allow float-equal rejects an exact-zero uniform draw before taking its log
		u = g.r.Float64()
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}
