// Package raven is a from-scratch Go implementation of "Raven:
// Belady-Guided, Predictive (Deep) Learning for In-Memory and Content
// Caching" (Hu et al., CoNEXT 2022), together with every substrate the
// paper's evaluation depends on: a neural mixture-density-network
// stack, a gradient boosting machine, fourteen baseline eviction
// policies, offline optima, synthetic production-like workload
// generators, a discrete-event cache simulator with latency/traffic
// modelling, a TCP cache-server prototype, and a benchmark harness
// that regenerates every table and figure of the paper.
//
// This top-level package is the public facade. Typical use:
//
//	tr := raven.SyntheticTrace(raven.SynthConfig{
//		Objects: 1000, Requests: 100000, Interarrival: raven.Poisson,
//	})
//	p := raven.NewRaven(raven.RavenConfig{TrainWindow: tr.Duration() / 8})
//	res := raven.Simulate(tr, p, raven.SimOptions{Capacity: 100})
//	fmt.Printf("OHR %.3f\n", res.OHR)
//
// Or, to compare against the built-in baselines by name:
//
//	p := raven.MustNewPolicy("lrb", raven.PolicyOptions{Capacity: 100})
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured results.
package raven
