package raven_test

import (
	"testing"

	"raven"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr := raven.SyntheticTrace(raven.SynthConfig{
		Objects: 200, Requests: 20000, Interarrival: raven.Uniform, Seed: 1,
	})
	p := raven.MustNewPolicy("lru", raven.PolicyOptions{Capacity: 50})
	res := raven.Simulate(tr, p, raven.SimOptions{Capacity: 50})
	if res.OHR <= 0 || res.OHR >= 1 {
		t.Errorf("implausible OHR %v", res.OHR)
	}
}

func TestFacadeRavenPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	tr := raven.SyntheticTrace(raven.SynthConfig{
		Objects: 200, Requests: 30000, Interarrival: raven.Poisson, Seed: 2,
	})
	rv := raven.NewRaven(raven.RavenConfig{
		TrainWindow:     tr.Duration() / 4,
		MaxTrainObjects: 300,
		ResidualSamples: 30,
		Seed:            3,
	})
	res := raven.Simulate(tr, rv, raven.SimOptions{Capacity: 40, WarmupFrac: 0.5})
	if !rv.Trained() {
		t.Fatal("facade Raven never trained")
	}
	lru := raven.Simulate(tr, raven.MustNewPolicy("lru", raven.PolicyOptions{Capacity: 40}),
		raven.SimOptions{Capacity: 40, WarmupFrac: 0.5})
	if res.OHR <= lru.OHR {
		t.Errorf("Raven OHR %.4f should beat LRU %.4f post-warmup", res.OHR, lru.OHR)
	}
}

func TestFacadePolicyNames(t *testing.T) {
	names := raven.PolicyNames()
	if len(names) < 20 {
		t.Errorf("expected >=20 registered policies, got %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"lru", "lrb", "lhr", "belady", "raven", "raven-ohr"} {
		if !seen[want] {
			t.Errorf("missing policy %q", want)
		}
	}
}

func TestFacadeProductionPresets(t *testing.T) {
	tr := raven.ProductionTrace(raven.TwitterC17, 0.02, 1)
	if tr.Len() == 0 {
		t.Fatal("empty production trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNetModels(t *testing.T) {
	if raven.CDNNetModel().ServiceTime(false, 1000) <= raven.CDNNetModel().ServiceTime(true, 1000) {
		t.Error("CDN miss must cost more than hit")
	}
	if raven.InMemoryNetModel().ServiceTime(false, 100) <= raven.InMemoryNetModel().ServiceTime(true, 100) {
		t.Error("in-memory miss must cost more than hit")
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := raven.ExperimentIDs()
	if len(ids) != 30 {
		t.Errorf("expected 30 experiments, got %d", len(ids))
	}
}

func TestFacadeUnknownPolicy(t *testing.T) {
	if _, err := raven.NewPolicy("bogus", raven.PolicyOptions{}); err == nil {
		t.Error("unknown policy should error")
	}
}
