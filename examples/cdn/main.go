// CDN scenario: a Wikipedia-like workload (heavy-tailed object sizes,
// diurnal drift, one-hit wonders) served through caches with the
// paper's §5.1.4 CDN latency model. Compares Raven's BHR-oriented
// variant with LRB-style learning and classic heuristics, and reports
// the WAN-traffic and latency consequences — the Fig. 9/10 story.
package main

import (
	"fmt"

	"raven"
)

func main() {
	tr := raven.ProductionTrace(raven.Wiki18, 0.2, 3)
	capacity := int64(float64(tr.UniqueBytes()) * 0.04)
	fmt.Printf("wiki18-like: %d requests, %d objects, %.1f MB unique, cache %.1f MB\n\n",
		tr.Len(), tr.UniqueObjects(),
		float64(tr.UniqueBytes())/(1<<20), float64(capacity)/(1<<20))

	opts := raven.SimOptions{
		Capacity:   capacity,
		Net:        raven.CDNNetModel(),
		WarmupFrac: 0.3,
	}
	polOpts := raven.PolicyOptions{Capacity: capacity, TrainWindow: tr.Duration() / 8, Seed: 5}

	fmt.Printf("%-10s %8s %8s %12s %12s\n", "policy", "OHR", "BHR", "backendMB", "avgLatency")
	for _, name := range []string{"lru", "gdsf", "lrb", "raven"} {
		res := raven.Simulate(tr, raven.MustNewPolicy(name, polOpts), opts)
		fmt.Printf("%-10s %8.4f %8.4f %12.1f %12v\n",
			name, res.OHR, res.BHR,
			float64(res.Net.BackendBytes)/(1<<20), res.Net.AvgLatency.Round(1e5))
	}
	fmt.Println("\nhigher BHR → less WAN traffic to the origin and lower mean latency (§5.2.2)")
}
