// Admission: front Raven with the learned admission pipeline and the
// MDN-driven prefetch queue, and compare against admit-all on a
// one-hit-wonder-heavy workload — the NewFrontedCache entry point of
// the redesigned admission API.
package main

import (
	"fmt"

	"raven"
)

func main() {
	// A CDN-like synthetic workload: Pareto interarrivals over a large
	// object population, so a big fraction of objects are requested
	// exactly once. Admit-all caches spend capacity on those one-hit
	// wonders; the admission front-end filters them.
	tr := raven.SyntheticTrace(raven.SynthConfig{
		Objects:      20000,
		Requests:     200000,
		Interarrival: raven.Pareto,
		Seed:         1,
	})

	const capacity = 500 // objects (all sizes are 1)

	for _, cfg := range []struct {
		label string
		opts  raven.PolicyOptions
	}{
		{"admit-all", raven.PolicyOptions{}},
		{"doorkeeper", raven.PolicyOptions{
			Admission: raven.AdmissionOptions{Mode: raven.AdmitDoorkeeper},
		}},
		{"learned", raven.PolicyOptions{
			Admission: raven.AdmissionOptions{Mode: raven.AdmitLearned},
			Prefetch:  raven.PrefetchOptions{Horizon: tr.Duration() / 50},
		}},
	} {
		opts := cfg.opts
		opts.Capacity = capacity
		opts.TrainWindow = tr.Duration() / 8
		opts.Seed = 7
		p, err := raven.NewPolicy("raven", opts)
		if err != nil {
			panic(err)
		}
		res := raven.Simulate(tr, p, raven.SimOptions{
			Capacity:   capacity,
			WarmupFrac: 0.5,
		})
		fmt.Printf("%-11s OHR %.4f  (%d admissions, %d rejections, %d prefetch hits)\n",
			cfg.label, res.OHR, res.Stats.Admissions, res.Stats.Rejections,
			res.Stats.PrefetchHits)
	}
}
