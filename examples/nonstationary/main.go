// Nonstationary workload: the object popularity ranking flips halfway
// through the trace — the regime the paper's §2.4/§4.2 design targets.
// Raven retrains each window and adapts; frequency heuristics carry
// stale popularity across the flip. The example prints per-phase hit
// ratios so the adaptation is visible.
package main

import (
	"fmt"

	"raven"
	"raven/internal/cache"
	"raven/internal/stats"
)

// flipTrace builds a Zipf workload whose popularity ranking reverses
// at the midpoint.
func flipTrace(objects, requests int, seed int64) *raven.Trace {
	g := stats.NewRNG(seed)
	z := stats.NewZipf(objects, 1.0)
	tr := &raven.Trace{Name: "popularity-flip"}
	t := 0.0
	for i := 0; i < requests; i++ {
		t += g.Exponential(1)
		rank := z.Sample(g)
		key := rank
		if i >= requests/2 {
			key = objects - 1 - rank // ranking reversed
		}
		tr.Reqs = append(tr.Reqs, raven.Request{
			Time: int64(t * 16), Key: raven.Key(key), Size: 1,
		})
	}
	return tr
}

func phaseOHR(tr *raven.Trace, p raven.Policy, capacity int64, phases int) []float64 {
	c := cache.New(capacity, p)
	out := make([]float64, 0, phases)
	per := tr.Len() / phases
	hits := 0
	for i, r := range tr.Reqs {
		if c.Handle(r) {
			hits++
		}
		if (i+1)%per == 0 {
			out = append(out, float64(hits)/float64(per))
			hits = 0
		}
	}
	return out
}

func main() {
	const objects, requests, capacity = 500, 120000, 60
	fmt.Println("popularity ranking flips at the midpoint (phase 4/8)")
	fmt.Printf("%-8s", "policy")
	for i := 1; i <= 8; i++ {
		fmt.Printf("  ph%-4d", i)
	}
	fmt.Println()

	mk := func(name string) raven.Policy {
		return raven.MustNewPolicy(name, raven.PolicyOptions{Capacity: capacity, Seed: 3})
	}
	tw := flipTrace(objects, requests, 1).Duration() / 10
	rv := raven.NewRaven(raven.RavenConfig{TrainWindow: tw, Seed: 5})

	for _, p := range []raven.Policy{mk("lfu"), mk("lru"), rv} {
		ohrs := phaseOHR(flipTrace(objects, requests, 1), p, capacity, 8)
		fmt.Printf("%-8s", p.Name())
		for _, v := range ohrs {
			fmt.Printf("  %.3f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nLFU's stale counters drag after the flip; Raven recovers after retraining")
	fmt.Printf("(Raven trained %d windows)\n", len(rv.TrainStats))
}
