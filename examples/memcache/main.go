// In-memory scenario: a Twitter-like key-value workload (tiny objects,
// bursty access) with the paper's in-memory latency model (100 µs
// memory, 10 ms database). Shows Raven's OHR-oriented variant cutting
// database reads versus production heuristics, and how to inspect
// Raven's training records.
package main

import (
	"fmt"

	"raven"
)

func main() {
	tr := raven.ProductionTrace(raven.TwitterC29, 0.2, 11)
	capacity := int64(float64(tr.UniqueBytes()) * 0.02)
	fmt.Printf("twitter-c29-like: %d requests, %d keys, cache %.1f KB\n\n",
		tr.Len(), tr.UniqueObjects(), float64(capacity)/(1<<10))

	opts := raven.SimOptions{
		Capacity:   capacity,
		Net:        raven.InMemoryNetModel(),
		WarmupFrac: 0.3,
	}

	rv := raven.NewRaven(raven.RavenConfig{
		Goal:              raven.GoalOHR, // object hits matter for KV latency
		TrainWindow:       tr.Duration() / 8,
		SampleBudgetBytes: 5 * capacity,
		Seed:              13,
	})

	polOpts := raven.PolicyOptions{Capacity: capacity, TrainWindow: tr.Duration() / 8, Seed: 13}
	fmt.Printf("%-12s %8s %14s %14s\n", "policy", "OHR", "dbReads(MB)", "throughput")
	for _, p := range []raven.Policy{
		raven.MustNewPolicy("lru", polOpts),
		raven.MustNewPolicy("lhr", polOpts),
		rv,
	} {
		res := raven.Simulate(tr, p, opts)
		fmt.Printf("%-12s %8.4f %14.2f %11.1f KRPS\n",
			res.Policy, res.OHR,
			float64(res.Net.BackendBytes)/(1<<20), res.Net.ThroughputKRPS)
	}

	fmt.Println("\nRaven training windows:")
	for i, rec := range rv.TrainStats {
		fmt.Printf("  window %d: %5d objects, %6d samples, %2d epochs, val NLL %.3f\n",
			i+1, rec.Objects, rec.Samples, rec.Result.Epochs, rec.Result.ValNLL)
	}
}
