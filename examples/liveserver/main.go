// Live server: starts the TCP cache server (the §5.4 ATS-style
// prototype) with a Raven policy, replays a Wikimedia-like trace over
// a real socket, and prints the hit-ratio trajectory and measured
// latencies — the Fig. 12 experiment in miniature.
package main

import (
	"fmt"
	"os"
	"time"

	"raven"
	"raven/internal/server"
)

func main() {
	tr := raven.ProductionTrace(raven.Wikimedia19, 0.03, 17)
	capacity := int64(float64(tr.UniqueBytes()) * 0.05)

	rv := raven.NewRaven(raven.RavenConfig{
		TrainWindow:       tr.Duration() / 6,
		SampleBudgetBytes: 5 * capacity,
		Seed:              19,
	})
	srv, err := server.New(server.Config{
		Capacity:    capacity,
		Policy:      rv,
		CacheDelay:  100 * time.Microsecond, // 1/100 of the paper's RTTs
		OriginDelay: time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "liveserver:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("cache server on %s, capacity %.1f MB, %d requests to replay\n\n",
		srv.Addr(), float64(capacity)/(1<<20), tr.Len())

	cl, err := server.Dial(srv.Addr())
	if err != nil {
		fmt.Fprintln(os.Stderr, "liveserver:", err)
		os.Exit(1)
	}
	defer cl.Close()

	res, err := cl.Replay(tr, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "liveserver:", err)
		os.Exit(1)
	}
	fmt.Println("hit-ratio trajectory (cumulative):")
	for _, pt := range res.Curve {
		fmt.Printf("  after %6d requests: OHR %.4f  BHR %.4f\n", pt.Requests, pt.OHR, pt.BHR)
	}
	fmt.Printf("\nfinal: OHR %.4f BHR %.4f over the wire in %v\n", res.OHR(), res.BHR(), res.Wall.Round(time.Millisecond))
	fmt.Printf("latency: mean %.2f ms  p90 %.2f ms  p99 %.2f ms (delays scaled 1/100 of §5.1.4)\n",
		res.Latency.Mean/1e6, res.Latency.P90/1e6, res.Latency.P99/1e6)
	fmt.Printf("trained %d model(s) while serving\n", len(rv.TrainStats))
}
