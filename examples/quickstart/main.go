// Quickstart: generate a synthetic workload, run Raven against LRU and
// the offline-optimal Belady, and print hit ratios — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"

	"raven"
)

func main() {
	// A Zipf-popularity workload with Uniform interarrival times
	// (one of the paper's §3.5 synthetic traces).
	tr := raven.SyntheticTrace(raven.SynthConfig{
		Objects:      1000,
		Requests:     100000,
		Interarrival: raven.Uniform,
		Seed:         1,
	})

	const capacity = 100 // objects (all sizes are 1)

	// Raven learns each object's next-arrival distribution and evicts
	// the object most likely to be needed farthest in the future. The
	// training window controls how often the model refreshes.
	rv := raven.NewRaven(raven.RavenConfig{
		TrainWindow: tr.Duration() / 8,
		Seed:        7,
	})

	opts := raven.SimOptions{
		Capacity: capacity,
		// Evaluate on the second half; the first half warms the model
		// (the paper's Appendix C.1 methodology).
		WarmupFrac: 0.5,
	}
	for _, p := range []raven.Policy{
		raven.MustNewPolicy("lru", raven.PolicyOptions{Capacity: capacity}),
		rv,
		raven.MustNewPolicy("belady", raven.PolicyOptions{Capacity: capacity}),
	} {
		res := raven.Simulate(tr, p, opts)
		fmt.Printf("%-8s object hit ratio %.4f  (%d evictions, mean eviction %.0f ns)\n",
			res.Policy, res.OHR, res.Stats.Evictions, res.EvictionNanos.Mean)
	}
}
