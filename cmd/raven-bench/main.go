// Command raven-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	raven-bench -list
//	raven-bench -exp fig9
//	raven-bench -exp all -quick
//	raven-bench -exp fig3 -csv
//
// Each experiment prints the same rows/series the paper reports; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"raven/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (fig2a..fig21, tab2..tab8, ablations) or 'all'")
		quick   = flag.Bool("quick", false, "tiny workloads and training budgets (~1 min for 'all')")
		scale   = flag.Float64("scale", 1, "workload scale multiplier")
		seed    = flag.Int64("seed", 42, "random seed")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		verbose = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.All, "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "raven-bench: -exp is required (try -list)")
		os.Exit(2)
	}
	cfg := experiments.Config{Quick: *quick, Scale: *scale, Seed: *seed}
	if *verbose {
		cfg.Log = os.Stderr
	}
	runner := experiments.NewRunner(cfg)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.All
	}
	for _, id := range ids {
		rep, err := runner.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raven-bench:", err)
			os.Exit(1)
		}
		if *csvOut {
			rep.CSV(os.Stdout)
		} else {
			rep.Fprint(os.Stdout)
		}
	}
}
