// Command raven-trace generates and analyzes cache traces.
//
// Usage:
//
//	raven-trace -gen wiki18 -scale 0.5 -out wiki18.txt
//	raven-trace -gen-synth pareto -requests 100000 -out pareto.txt
//	raven-trace -analyze wiki18.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"raven/internal/trace"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a production-like preset trace")
		genSynth = flag.String("gen-synth", "", "generate a synthetic trace: poisson|uniform|pareto")
		requests = flag.Int("requests", 100000, "synthetic request count")
		objects  = flag.Int("objects", 1000, "synthetic object count")
		varSizes = flag.Bool("varsizes", false, "synthetic variable sizes")
		scale    = flag.Float64("scale", 0.5, "production trace scale")
		seed     = flag.Int64("seed", 42, "random seed")
		out      = flag.String("out", "", "output file ('' = stdout)")
		analyze  = flag.String("analyze", "", "analyze a trace file instead of generating")
	)
	flag.Parse()

	if *analyze != "" {
		if err := analyzeFile(*analyze); err != nil {
			fmt.Fprintln(os.Stderr, "raven-trace:", err)
			os.Exit(1)
		}
		return
	}

	var tr *trace.Trace
	switch {
	case *gen != "":
		tr = trace.ProductionTrace(trace.ProductionPreset(*gen), *scale, *seed)
	case *genSynth != "":
		var d trace.Interarrival
		switch *genSynth {
		case "poisson":
			d = trace.Poisson
		case "uniform":
			d = trace.Uniform
		case "pareto":
			d = trace.Pareto
		default:
			fmt.Fprintf(os.Stderr, "raven-trace: unknown law %q\n", *genSynth)
			os.Exit(1)
		}
		tr = trace.Synthetic(trace.SynthConfig{
			Objects: *objects, Requests: *requests, Interarrival: d,
			VariableSizes: *varSizes, Seed: *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "raven-trace: one of -gen, -gen-synth, -analyze required")
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raven-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, "raven-trace:", err)
		os.Exit(1)
	}
}

func analyzeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f, path)
	if err != nil {
		return err
	}
	c := trace.Characterize(tr)
	fmt.Printf("trace:        %s\n", c.Name)
	fmt.Printf("requests:     %d\n", c.TotalRequests)
	fmt.Printf("total bytes:  %d\n", c.TotalBytes)
	fmt.Printf("objects:      %d\n", c.UniqueObjects)
	fmt.Printf("unique bytes: %d\n", c.UniqueBytes)
	fmt.Printf("duration:     %d ticks\n", c.Duration)
	fmt.Printf("mean size:    %.1f B (max %d)\n", c.MeanSize, c.MaxSize)
	fmt.Printf("zipf slope:   %.2f\n", trace.ZipfSlope(tr))

	fmt.Println("\nrequests by object size (log10 bins):")
	printBins(trace.RequestsBySize(tr, 9))
	fmt.Println("bytes by object frequency (log10 bins):")
	printBins(trace.BytesByFrequency(tr, 9))
	return nil
}

func printBins(bw trace.BinWeights) {
	for i, f := range bw.Fractions {
		if f < 0.001 {
			continue
		}
		fmt.Printf("  %-22s %5.1f%%\n", bw.Labels[i], 100*f)
	}
}
