// Command ravencached runs the TCP cache server (the paper's §5.4
// prototype) with any eviction policy from this repository.
//
// Usage:
//
//	ravencached -addr :7070 -capacity 1073741824 -policy raven
//
// Protocol (line-based text over TCP):
//
//	GET <key> <size> [time]  →  HIT <size> | MISS <size>
//	STATS                    →  STATS <requests> <hits> <reqBytes> <hitBytes>
//	QUIT
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"raven/internal/policy"
	"raven/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		capacity = flag.Int64("capacity", 64<<20, "cache capacity in bytes")
		polName  = flag.String("policy", "raven", "eviction policy name")
		window   = flag.Int64("window", 100000, "learning-policy training window in trace ticks")
		cacheMS  = flag.Int("cachedelay", 0, "simulated per-request delay (ms)")
		originMS = flag.Int("origindelay", 0, "simulated per-miss origin delay (ms)")
		seed     = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	p, err := policy.New(*polName, policy.Options{
		Capacity:    *capacity,
		TrainWindow: *window,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravencached:", err)
		os.Exit(1)
	}
	srv, err := server.New(server.Config{
		Addr:        *addr,
		Capacity:    *capacity,
		Policy:      p,
		CacheDelay:  time.Duration(*cacheMS) * time.Millisecond,
		OriginDelay: time.Duration(*originMS) * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravencached:", err)
		os.Exit(1)
	}
	fmt.Printf("ravencached: policy=%s capacity=%d listening on %s\n", *polName, *capacity, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := srv.Stats()
	fmt.Printf("\nravencached: %d requests, OHR %.4f, BHR %.4f\n", st.Requests, st.OHR(), st.BHR())
	srv.Close()
}
