// Command ravencached runs the TCP cache server (the paper's §5.4
// prototype) with any eviction policy from this repository.
//
// Usage:
//
//	ravencached -addr :7070 -capacity 1073741824 -policy raven
//
// Protocol (line-based text over TCP):
//
//	GET <key> <size> [time]  →  HIT <size> | MISS <size>
//	SET <key> <size> [time]  →  STORED <size> | NOSTORED <size>
//	STATS                    →  STATS <requests> <hits> <reqBytes> <hitBytes>
//	METRICS                  →  METRICS <n> followed by n "name value" lines
//	PING                     →  PONG (liveness probe; not counted as a request)
//	QUIT
//
// The same port also speaks a fixed-frame binary protocol (memcached
// style): a connection whose first byte is 0x80 is served 26-byte
// little-endian request frames (verb, key, size, time — GET, SET,
// QUIT, quiet GETQ, PING) with 10-byte status replies, pipelined, on
// a zero-allocation path. See internal/server/binary.go for the frame
// layout. -readbuf sizes the
// per-connection read buffer, which bounds how many pipelined
// requests batch into one reply flush.
//
// -shards splits the cache into independent shards (memcached-style,
// rounded up to a power of two), each with its own policy instance and
// lock, so concurrent clients on different shards never contend.
//
// The server shuts down cleanly on SIGINT or SIGTERM: it stops
// accepting, drains in-flight connections up to -drain, force-closes
// stragglers, and prints final statistics either way. -metricsevery
// periodically logs the full metrics snapshot to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"raven/internal/cache"
	"raven/internal/core"
	"raven/internal/obs"
	"raven/internal/policy"
	"raven/internal/server"
)

func main() {
	os.Exit(run())
}

// run carries the real main body so deferred cleanup (final stats,
// server drain) executes before the process exits; os.Exit in main
// would skip it.
func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		capacity = flag.Int64("capacity", 64<<20, "cache capacity in bytes")
		polName  = flag.String("policy", "raven", "eviction policy name")
		shards   = flag.Int("shards", 1, "cache shards, one policy instance each (rounded up to a power of two)")
		window   = flag.Int64("window", 100000, "learning-policy training window in trace ticks")
		node     = flag.Int("node", 0, "this node's index in a ravenrouter fleet (derives per-node seeds and checkpoint dirs)")
		nodes    = flag.Int("nodes", 1, "fleet size; 1 means standalone (no per-node derivation)")
		cacheMS  = flag.Int("cachedelay", 0, "simulated per-request delay (ms)")
		originMS = flag.Int("origindelay", 0, "simulated per-miss origin delay (ms)")
		seed     = flag.Int64("seed", 42, "random seed")

		admitMode  = flag.String("admit", "", "admission front-end: off|doorkeeper|learned (learned needs a reuse-predicting policy: raven/raven-ohr)")
		prefetchHz = flag.Int64("prefetch-horizon", 0, "raven: queue evicted objects predicted to return within this many trace ticks for re-warming (0 = off)")

		scoreCache  = flag.Bool("score-cache", true, "raven: cached-score eviction fast path")
		inference32 = flag.Bool("inference32", true, "raven: float32 inference kernels on the fast path (training stays float64)")
		budget      = flag.Duration("decision-budget", 50*time.Microsecond, "raven: per-eviction-decision deadline; overruns fall back to LRU and count toward degradation (0 = off)")

		ckptDir   = flag.String("checkpoint", "", "learning-policy checkpoint directory: resume from the newest valid generation, save after trainings")
		ckptEvery = flag.Int("checkpoint-every", 1, "save a checkpoint generation every N completed trainings")

		maxConns     = flag.Int("maxconns", 0, "max concurrent connections (0 = unlimited); excess dials get ERR busy")
		idleTimeout  = flag.Duration("idletimeout", 0, "per-request read deadline (0 = 2m default, negative = off)")
		writeTimeout = flag.Duration("writetimeout", 0, "per-response write deadline (0 = 30s default, negative = off)")
		drain        = flag.Duration("drain", 0, "graceful drain bound on shutdown (0 = 5s default, negative = wait forever)")
		readBuf      = flag.Int("readbuf", 0, "per-connection read buffer in bytes (0 = 16KiB default); bounds pipelined reply batching")
		metricsEvery = flag.Duration("metricsevery", 0, "log a metrics snapshot line this often (0 = off)")
	)
	flag.Parse()

	ravenObs := &obs.RavenObs{}
	factory, err := policy.Lookup(*polName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravencached:", err)
		return 1
	}
	if *node < 0 || *nodes < 1 || *node >= *nodes {
		fmt.Fprintf(os.Stderr, "ravencached: -node %d out of range for -nodes %d\n", *node, *nodes)
		return 1
	}
	perShard := factory.PerShard(policy.Options{
		Capacity:        *capacity,
		TrainWindow:     *window,
		Seed:            *seed,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Obs:             ravenObs,
		ScoreCache:      *scoreCache,
		Inference32:     *inference32,
		DecisionBudget:  *budget,
		Admission:       policy.AdmissionOptions{Mode: *admitMode},
		Prefetch:        policy.PrefetchOptions{Horizon: *prefetchHz},
	}.PerNode(*node, *nodes), *shards)
	// Capture each shard's policy as it is built so checkpoint-resume
	// status can be reported per shard below.
	var built []cache.Policy
	newPolicy := func(shard int, capacity int64) (cache.Policy, error) {
		p, err := perShard(shard, capacity)
		if err != nil {
			return nil, err
		}
		built = append(built, p)
		return p, nil
	}
	srv, err := server.New(server.Config{
		Addr:         *addr,
		Capacity:     *capacity,
		Shards:       *shards,
		NewPolicy:    newPolicy,
		CacheDelay:   time.Duration(*cacheMS) * time.Millisecond,
		OriginDelay:  time.Duration(*originMS) * time.Millisecond,
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drain,
		ReadBuf:      *readBuf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravencached:", err)
		return 1
	}
	if *ckptDir != "" {
		for shard, p := range built {
			r, ok := cache.Unwrap(p).(*core.Raven)
			if !ok {
				continue
			}
			if r.CkptErr != nil {
				fmt.Fprintf(os.Stderr, "ravencached: shard%d checkpoint: %v\n", shard, r.CkptErr)
			}
			if r.CkptResume.Path != "" {
				fmt.Printf("ravencached: shard%d resumed checkpoint generation %d (%s), %d corrupt skipped\n",
					shard, r.CkptResume.Seq, r.CkptResume.Path, r.CkptResume.CorruptSkipped)
			} else {
				fmt.Printf("ravencached: shard%d has no valid checkpoint (%d corrupt skipped), starting cold\n",
					shard, r.CkptResume.CorruptSkipped)
			}
		}
	}
	// Model-lifecycle metrics join the same registry METRICS serves,
	// so operators see rollbacks/health/checkpoint counters live.
	ravenObs.Register(srv.Metrics(), "raven")
	fmt.Printf("ravencached: policy=%s capacity=%d shards=%d listening on %s\n",
		*polName, *capacity, srv.Shards(), srv.Addr())

	// Final stats print and drain run deferred so they happen on
	// either signal (and in this order: stats reflect the fully
	// drained server because Close runs first).
	defer func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ravencached: close:", err)
		}
		st := srv.Stats()
		fmt.Printf("\nravencached: %d requests, OHR %.4f, BHR %.4f\n", st.Requests, st.OHR(), st.BHR())
		// Final health-machine state per shard (the server is drained,
		// so the policies are quiescent): operators and the chaos
		// harness read this to tell a clean fallback from a crash.
		for shard, p := range built {
			if r, ok := cache.Unwrap(p).(*core.Raven); ok {
				fmt.Printf("ravencached: shard%d final health: %s\n", shard, r.Health())
			}
		}
		fmt.Printf("ravencached: final metrics: %s\n", srv.Metrics().Line())
	}()

	stopTicker := make(chan struct{})
	defer close(stopTicker)
	if *metricsEvery > 0 {
		go func() {
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-stopTicker:
					return
				case <-t.C:
					fmt.Printf("ravencached: metrics: %s\n", srv.Metrics().Line())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("\nravencached: received %v, draining\n", got)
		return 0
	case <-srv.Fatal():
		// The accept loop died permanently (listener revoked, fd
		// exhaustion that never cleared): the server can't serve, so
		// exit non-zero and let the supervisor restart it.
		fmt.Fprintln(os.Stderr, "ravencached: fatal:", srv.FatalErr())
		return 1
	}
}
