// Command ravenbench is the performance harness for the parallel
// execution layer: it times the tuned linear-algebra kernels against
// scalar references, training epochs and eviction decisions across
// worker counts, and an end-to-end simulation, then writes the
// results as BENCH_<date>.json so runs are comparable across machines
// and commits.
//
// Thread-level speedups require real cores: the report records
// num_cpu and gomaxprocs so a reader can tell "no speedup" on a
// single-core container apart from a regression. The kernel-tuning
// and allocation numbers are meaningful on any machine.
//
// Usage:
//
//	ravenbench [-out DIR] [-workers 1,2,4,8] [-quick]
//	           [-pipeclients 2,8] [-pipedepths 1,16,64]
//	ravenbench -compare OLD.json NEW.json
//
// The -compare mode prints per-section deltas between two reports and
// exits non-zero when the eviction-decision latencies or the
// pipelined-sweep throughput regressed by more than 10%, so the perf
// trajectory is enforceable in CI, not just recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raven/internal/cache"
	"raven/internal/core"
	"raven/internal/nn"
	"raven/internal/obs"
	"raven/internal/policy"
	"raven/internal/server"
	"raven/internal/sim"
	"raven/internal/stats"
	"raven/internal/trace"
)

type kernelResult struct {
	Name      string  `json:"name"`
	TunedNs   float64 `json:"tuned_ns_per_op"`
	RefNs     float64 `json:"reference_ns_per_op"`
	Speedup   float64 `json:"speedup_vs_reference"`
	Dimension string  `json:"dimension"`
}

type workerResult struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	Speedup     float64 `json:"speedup_vs_serial"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type e2eResult struct {
	Workers   int     `json:"workers"`
	Requests  int     `json:"requests"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedup_vs_serial"`
	ReqPerSec float64 `json:"requests_per_sec"`
}

type shardResult struct {
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests_total"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"requests_per_sec"`
	Speedup   float64 `json:"speedup_vs_one_shard"`
}

type pipeResult struct {
	Clients   int     `json:"clients"`
	Depth     int     `json:"pipeline_depth"`
	Requests  int     `json:"requests_total"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"requests_per_sec"`
	P50Ns     float64 `json:"p50_ns"`
	P99Ns     float64 `json:"p99_ns"`
}

type decisionP99Result struct {
	Mode               string  `json:"mode"` // "f64" or "f32" inference kernels
	Workers            int     `json:"workers"`
	Decisions          int     `json:"decisions"`
	P50Ns              float64 `json:"p50_ns"`
	P99Ns              float64 `json:"p99_ns"`
	ScoreCacheHitRatio float64 `json:"score_cache_hit_ratio"`
}

type admissionResult struct {
	Mode       string  `json:"mode"` // admit-all | doorkeeper | learned
	Requests   int     `json:"requests"`
	OHR        float64 `json:"ohr"`
	RejectRate float64 `json:"reject_rate"`
	PrefetchOK int64   `json:"prefetch_hits"`
}

type report struct {
	Date       string              `json:"date"`
	GoVersion  string              `json:"go_version"`
	NumCPU     int                 `json:"num_cpu"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Kernels    []kernelResult      `json:"kernels"`
	TrainEpoch []workerResult      `json:"train_epoch"`
	Evict      []workerResult      `json:"evict_decision"`
	EvictP99   []decisionP99Result `json:"evict_decision_p99,omitempty"`
	EndToEnd   []e2eResult         `json:"end_to_end_sim"`
	ShardSweep []shardResult       `json:"shard_sweep_server"`
	// PipelinedSweep measures the binary protocol with request
	// pipelining against the same server setup as ShardSweep; depth 1
	// isolates the binary framing win, deeper pipelines add batching.
	PipelinedSweep []pipeResult `json:"pipelined_sweep,omitempty"`
	// AdmissionSweep compares the admission front-end modes (admit-all,
	// doorkeeper, learned + prefetch) on a one-hit-wonder-heavy trace:
	// OHR is gated in -compare mode so an admission-quality regression
	// fails CI like a latency regression does.
	AdmissionSweep []admissionResult `json:"admission_sweep,omitempty"`
}

// timeOp measures ns/op of fn, running it repeatedly until at least
// minDur has elapsed (after one untimed warmup call).
func timeOp(minDur time.Duration, fn func()) float64 {
	fn()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		el := time.Since(start)
		if el >= minDur {
			return float64(el.Nanoseconds()) / float64(n)
		}
		if el <= 0 {
			n *= 1000
			continue
		}
		// Aim 20% past the budget so the next round usually terminates.
		n = int(float64(n) * 1.2 * float64(minDur) / float64(el))
		if n < 1 {
			n = 1
		}
	}
}

// allocsPerOp measures heap allocations per call of fn (after warmup),
// single-goroutine, mirroring testing.AllocsPerRun.
func allocsPerOp(runs int, fn func()) float64 {
	fn()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// ---- scalar reference kernels (the pre-tuning implementations) ----

func refMatVec(w []float64, rows, cols int, x, y0, y []float64) {
	for r := 0; r < rows; r++ {
		s := 0.0
		if y0 != nil {
			s = y0[r]
		}
		row := w[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			s += row[c] * x[c]
		}
		y[r] = s
	}
}

func refMatTVecAdd(w []float64, rows, cols int, dy, dx []float64) {
	for r := 0; r < rows; r++ {
		d := dy[r]
		if d == 0 { //lint:allow float-equal mirrors the tuned kernel's exact-zero row skip
			continue
		}
		row := w[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			dx[c] += d * row[c]
		}
	}
}

func refOuterAdd(dw []float64, rows, cols int, dy, x []float64) {
	for r := 0; r < rows; r++ {
		d := dy[r]
		if d == 0 { //lint:allow float-equal mirrors the tuned kernel's exact-zero row skip
			continue
		}
		row := dw[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			row[c] += d * x[c]
		}
	}
}

func benchKernels(minDur time.Duration) []kernelResult {
	const rows, cols = 64, 64
	g := stats.NewRNG(1)
	w := make([]float64, rows*cols)
	x := make([]float64, cols)
	y := make([]float64, rows)
	dy := make([]float64, rows)
	dx := make([]float64, cols)
	for i := range w {
		w[i] = g.NormFloat64()
	}
	for i := range x {
		x[i] = g.NormFloat64()
	}
	for i := range dy {
		dy[i] = g.NormFloat64()
	}
	dim := fmt.Sprintf("%dx%d", rows, cols)
	mk := func(name string, tuned, ref func()) kernelResult {
		t := timeOp(minDur, tuned)
		r := timeOp(minDur, ref)
		return kernelResult{Name: name, TunedNs: t, RefNs: r, Speedup: r / t, Dimension: dim}
	}
	return []kernelResult{
		mk("matVec",
			func() { nn.MatVec(w, rows, cols, x, nil, y) },
			func() { refMatVec(w, rows, cols, x, nil, y) }),
		mk("matTVecAdd",
			func() { nn.MatTVecAdd(w, rows, cols, dy, dx) },
			func() { refMatTVecAdd(w, rows, cols, dy, dx) }),
		mk("outerAdd",
			func() { nn.OuterAdd(w, rows, cols, dy, x) },
			func() { refOuterAdd(w, rows, cols, dy, x) }),
	}
}

func trainSequences(n int, g *stats.RNG) []nn.Sequence {
	data := make([]nn.Sequence, n)
	for i := range data {
		taus := make([]float64, 4+g.Intn(24))
		for j := range taus {
			taus[j] = g.Exponential(40)
		}
		data[i] = nn.Sequence{
			Taus:     taus,
			Size:     64 + float64(g.Intn(4000)),
			Survival: g.Exponential(80),
		}
	}
	return data
}

func benchTrainEpoch(workers []int, seqs int) []workerResult {
	data := trainSequences(seqs, stats.NewRNG(3))
	out := make([]workerResult, 0, len(workers))
	for _, w := range workers {
		n := nn.NewNet(nn.Config{TimeScale: 40, Seed: 3})
		tc := nn.TrainConfig{MaxEpochs: 1, Patience: 1, Survival: true, Workers: w, Seed: 9}
		ns := timeOp(200*time.Millisecond, func() { n.Fit(data, tc) })
		out = append(out, workerResult{Workers: w, NsPerOp: ns})
	}
	for i := range out {
		out[i].Speedup = out[0].NsPerOp / out[i].NsPerOp
	}
	return out
}

func trainedRaven(workers int) *core.Raven {
	tr := trace.Synthetic(trace.SynthConfig{
		Objects: 200, Requests: 30000, Interarrival: trace.Poisson, Seed: 5,
	})
	r := core.New(core.Config{
		TrainWindow:     tr.Duration() / 4,
		MaxTrainObjects: 300,
		Net:             nn.Config{Hidden: 8, MLPHidden: 12, K: 4},
		Train:           nn.TrainConfig{MaxEpochs: 5, Patience: 2},
		Workers:         workers,
		Seed:            7,
	})
	c := cache.New(40, r)
	for _, req := range tr.Reqs {
		c.Handle(req)
	}
	if !r.Trained() {
		fmt.Fprintln(os.Stderr, "ravenbench: policy never trained; eviction numbers would be LRU fallback")
		os.Exit(1)
	}
	return r
}

func benchEvict(workers []int) []workerResult {
	out := make([]workerResult, 0, len(workers))
	for _, w := range workers {
		r := trainedRaven(w)
		victim := func() {
			if _, ok := r.Victim(); !ok {
				fmt.Fprintln(os.Stderr, "ravenbench: no victim from a full cache")
				os.Exit(1)
			}
		}
		ns := timeOp(300*time.Millisecond, victim)
		al := allocsPerOp(200, victim)
		out = append(out, workerResult{Workers: w, NsPerOp: ns, AllocsPerOp: al})
	}
	for i := range out {
		out[i].Speedup = out[0].NsPerOp / out[i].NsPerOp
	}
	return out
}

// benchEvictP99 measures the tail of individual eviction decisions on
// the ScoreCache fast path under realistic dirtying: after training,
// the trace is replayed (time-shifted to stay monotone) so each timed
// Victim call sees the candidate-staleness pattern of live traffic
// rather than an artificially all-clean or all-dirty cache. Every
// decision is timed individually — the p99 is the number the <50µs
// per-decision SLO (Config.DecisionBudget) is set against.
func benchEvictP99(f32 bool, decisions int) decisionP99Result {
	tr := trace.Synthetic(trace.SynthConfig{
		Objects: 200, Requests: 30000, Interarrival: trace.Poisson, Seed: 5,
	})
	ro := &obs.RavenObs{}
	r := core.New(core.Config{
		TrainWindow:     tr.Duration() / 4,
		MaxTrainObjects: 300,
		Net:             nn.Config{Hidden: 8, MLPHidden: 12, K: 4},
		Train:           nn.TrainConfig{MaxEpochs: 5, Patience: 2},
		Workers:         1,
		Seed:            7,
		ScoreCache:      true,
		Inference32:     f32,
		Obs:             ro,
	})
	c := cache.New(40, r)
	for _, req := range tr.Reqs {
		c.Handle(req)
	}
	if !r.Trained() {
		fmt.Fprintln(os.Stderr, "ravenbench: policy never trained; p99 numbers would be LRU fallback")
		os.Exit(1)
	}
	r.Victim() // warm: grow scratch, freeze weights, populate the score cache
	hits0, res0 := ro.ScoreCacheHits.Load(), ro.ScoreRescores.Load()
	samples := make([]float64, 0, decisions)
	span := tr.Duration() + 1
	for i := 0; len(samples) < decisions; i++ {
		req := tr.Reqs[i%len(tr.Reqs)]
		req.Time += span * int64(1+i/len(tr.Reqs))
		c.Handle(req)
		start := time.Now()
		if _, ok := r.Victim(); !ok {
			fmt.Fprintln(os.Stderr, "ravenbench: no victim from a full cache")
			os.Exit(1)
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds()))
	}
	hits := ro.ScoreCacheHits.Load() - hits0
	rescores := ro.ScoreRescores.Load() - res0
	ratio := 0.0
	if hits+rescores > 0 {
		ratio = float64(hits) / float64(hits+rescores)
	}
	sort.Float64s(samples)
	mode := "f64"
	if f32 {
		mode = "f32"
	}
	return decisionP99Result{
		Mode:               mode,
		Workers:            1,
		Decisions:          len(samples),
		P50Ns:              percentile(samples, 50),
		P99Ns:              percentile(samples, 99),
		ScoreCacheHitRatio: ratio,
	}
}

// percentile returns the p-th percentile of sorted samples.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func benchEndToEnd(workers []int, requests int) []e2eResult {
	out := make([]e2eResult, 0, len(workers))
	for _, w := range workers {
		tr := trace.Synthetic(trace.SynthConfig{
			Objects: 200, Requests: requests, Interarrival: trace.Pareto,
			VariableSizes: true, Seed: 11,
		})
		capacity := tr.UniqueBytes() / 8
		p := policy.MustNew("raven", policy.Options{
			Capacity: capacity, TrainWindow: tr.Duration() / 4, Seed: 7, Workers: w,
		})
		start := time.Now()
		sim.Run(tr, p, sim.Options{Capacity: capacity, Seed: 3})
		el := time.Since(start).Seconds()
		out = append(out, e2eResult{
			Workers: w, Requests: requests, Seconds: el,
			ReqPerSec: float64(requests) / el,
		})
	}
	for i := range out {
		out[i].Speedup = out[0].Seconds / out[i].Seconds
	}
	return out
}

// benchAdmissionSweep replays one one-hit-wonder-heavy synthetic trace
// (many objects, few repeats, Pareto interarrivals — the CDN shape
// admission control exists for) through Raven under each admission
// mode and records the hit-ratio and reject-rate deltas. The learned
// run also arms the prefetch queue so its counters are exercised.
func benchAdmissionSweep(requests int) []admissionResult {
	modes := []struct {
		label string
		adm   policy.AdmissionOptions
		pf    policy.PrefetchOptions
	}{
		{"admit-all", policy.AdmissionOptions{}, policy.PrefetchOptions{}},
		{"doorkeeper", policy.AdmissionOptions{Mode: policy.AdmitDoorkeeper}, policy.PrefetchOptions{}},
		{"learned", policy.AdmissionOptions{Mode: policy.AdmitLearned},
			policy.PrefetchOptions{Horizon: 1}}, // filled from the trace below
	}
	out := make([]admissionResult, 0, len(modes))
	for _, m := range modes {
		tr := trace.Synthetic(trace.SynthConfig{
			Objects: requests / 3, Requests: requests, Interarrival: trace.Pareto,
			Seed: 11,
		})
		if m.pf.Horizon != 0 {
			m.pf.Horizon = tr.Duration() / 8
		}
		capacity := int64(requests) / 300
		p := policy.MustNew("raven", policy.Options{
			Capacity:    capacity,
			TrainWindow: tr.Duration() / 8,
			Seed:        7,
			ScoreCache:  true,
			Admission:   m.adm,
			Prefetch:    m.pf,
		})
		res := sim.Run(tr, p, sim.Options{Capacity: capacity, Seed: 3, WarmupFrac: 0.3})
		misses := res.Stats.Admissions + res.Stats.Rejections
		rejectRate := 0.0
		if misses > 0 {
			rejectRate = float64(res.Stats.Rejections) / float64(misses)
		}
		out = append(out, admissionResult{
			Mode: m.label, Requests: requests, OHR: res.OHR,
			RejectRate: rejectRate, PrefetchOK: res.Stats.PrefetchHits,
		})
	}
	return out
}

// benchShards measures server throughput across shard counts: for
// each count it starts a TCP server whose cache is split into that
// many shards (one LHD instance per shard — a policy with real
// per-request compute, so the sharded critical section dominates and
// the sweep measures lock contention, not syscall overhead) and
// hammers it with concurrent clients issuing mixed GET/SET traffic.
// Shard counts beyond the core count cannot speed up wall time — the
// report's num_cpu/gomaxprocs fields tell flat curves on small
// machines apart from regressions.
func benchShards(shardCounts []int, clients, perClient int) []shardResult {
	out := make([]shardResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		f, err := policy.Lookup("lhd")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ravenbench:", err)
			os.Exit(1)
		}
		const capacity = 1 << 20
		srv, err := server.New(server.Config{
			Capacity:  capacity,
			Shards:    n,
			NewPolicy: f.PerShard(policy.Options{Capacity: capacity, Seed: 7}, n),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ravenbench:", err)
			os.Exit(1)
		}
		var wg sync.WaitGroup
		var failed atomic.Bool
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl, err := server.Dial(srv.Addr())
				if err != nil {
					failed.Store(true)
					return
				}
				defer cl.Close()
				cl.Timeout = 30 * time.Second
				g := stats.NewRNG(int64(c + 1))
				for i := 0; i < perClient; i++ {
					key := trace.Key(g.Intn(8192))
					size := int64(64 + int(key)%1024)
					if g.Float64() < 0.1 {
						_, err = cl.Set(key, size, -1)
					} else {
						_, err = cl.Get(key, size, -1)
					}
					if err != nil {
						failed.Store(true)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		_ = srv.Close()
		if failed.Load() {
			fmt.Fprintln(os.Stderr, "ravenbench: shard sweep client failed")
			os.Exit(1)
		}
		total := clients * perClient
		out = append(out, shardResult{
			Shards: srv.Shards(), Clients: clients, Requests: total,
			Seconds: el, ReqPerSec: float64(total) / el,
		})
	}
	for i := range out {
		out[i].Speedup = out[0].Seconds / out[i].Seconds
	}
	return out
}

// benchPipelined measures the binary protocol's pipelined serving
// path: an 8-shard LHD server (the ShardSweep setup, so the two
// sections share a baseline) hammered by binary-protocol clients
// keeping `depth` requests in flight each, over the same mixed
// 10%-SET key pattern as benchShards. Reported per (clients, depth)
// cell: aggregate req/s plus the p50/p99 per-request latency as the
// pipelining client observes it (enqueue to reply, so deep pipelines
// trade latency for throughput by construction).
func benchPipelined(clientCounts, depths []int, perClient int) []pipeResult {
	f, err := policy.Lookup("lhd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravenbench:", err)
		os.Exit(1)
	}
	out := make([]pipeResult, 0, len(clientCounts)*len(depths))
	for _, clients := range clientCounts {
		for _, depth := range depths {
			const capacity, shards = 1 << 20, 8
			srv, err := server.New(server.Config{
				Capacity:  capacity,
				Shards:    shards,
				NewPolicy: f.PerShard(policy.Options{Capacity: capacity, Seed: 7}, shards),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "ravenbench:", err)
				os.Exit(1)
			}
			var wg sync.WaitGroup
			var failed atomic.Bool
			stats99 := make([]server.PipelineStats, clients)
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c, depth int) {
					defer wg.Done()
					cl, err := server.DialBinary(srv.Addr())
					if err != nil {
						failed.Store(true)
						return
					}
					defer cl.Close()
					cl.Timeout = 30 * time.Second
					g := stats.NewRNG(int64(c + 1))
					ops := make([]server.Op, perClient)
					for i := range ops {
						key := trace.Key(g.Intn(8192))
						ops[i] = server.Op{
							Key:  key,
							Size: int64(64 + int(key)%1024),
							Time: -1,
							Set:  g.Float64() < 0.1,
						}
					}
					st, err := cl.Pipeline(ops, depth)
					if err != nil {
						failed.Store(true)
						return
					}
					stats99[c] = st
				}(c, depth)
			}
			wg.Wait()
			el := time.Since(start).Seconds()
			_ = srv.Close()
			if failed.Load() {
				fmt.Fprintln(os.Stderr, "ravenbench: pipelined sweep client failed")
				os.Exit(1)
			}
			// Aggregate: throughput over shared wall time; the latency
			// percentiles are the worst client's (conservative — one
			// sorted merge per cell is not worth the memory).
			total := clients * perClient
			res := pipeResult{
				Clients: clients, Depth: depth, Requests: total,
				Seconds: el, ReqPerSec: float64(total) / el,
			}
			for _, st := range stats99 {
				if st.P50Ns > res.P50Ns {
					res.P50Ns = st.P50Ns
				}
				if st.P99Ns > res.P99Ns {
					res.P99Ns = st.P99Ns
				}
			}
			out = append(out, res)
		}
	}
	return out
}

// ---- report comparison (-compare OLD.json NEW.json) ----

func loadReport(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// deltaLine formats "old -> new (±pct%)" with an optional REGRESSION
// marker when the change exceeds tol (for metrics where bigger is
// worse, i.e. latencies).
func deltaLine(before, after float64, tol float64, gate bool) (string, bool) {
	if before <= 0 {
		return fmt.Sprintf("%12.1f -> %12.1f  (no baseline)", before, after), false
	}
	pct := (after - before) / before * 100
	s := fmt.Sprintf("%12.1f -> %12.1f  (%+6.1f%%)", before, after, pct)
	if gate && after > before*(1+tol) {
		return s + "  REGRESSION", true
	}
	return s, false
}

// deltaLineUp is deltaLine for metrics where bigger is better
// (throughput): a regression is after dropping more than tol below
// before.
func deltaLineUp(before, after float64, tol float64, gate bool) (string, bool) {
	if before <= 0 {
		return fmt.Sprintf("%12.1f -> %12.1f  (no baseline)", before, after), false
	}
	pct := (after - before) / before * 100
	s := fmt.Sprintf("%12.1f -> %12.1f  (%+6.1f%%)", before, after, pct)
	if gate && after < before*(1-tol) {
		return s + "  REGRESSION", true
	}
	return s, false
}

// compareReports prints per-section deltas between two ravenbench
// reports and returns true when a gated section (the eviction-decision
// mean and p99 latencies, and pipelined-sweep throughput) regressed by
// more than tol. Sections or entries present in only one report are
// skipped — older reports predate evict_decision_p99 and
// pipelined_sweep.
func compareReports(oldRep, newRep *report, tol float64) bool {
	regressed := false
	check := func(s string, bad bool) {
		fmt.Printf("  %s\n", s)
		if bad {
			regressed = true
		}
	}

	fmt.Println("== kernels (tuned ns/op, informational)")
	for _, n := range newRep.Kernels {
		for _, o := range oldRep.Kernels {
			if o.Name == n.Name {
				s, _ := deltaLine(o.TunedNs, n.TunedNs, tol, false)
				fmt.Printf("  %-12s %s\n", n.Name, s)
			}
		}
	}
	fmt.Println("== train_epoch (ns/op, informational)")
	for _, n := range newRep.TrainEpoch {
		for _, o := range oldRep.TrainEpoch {
			if o.Workers == n.Workers {
				s, _ := deltaLine(o.NsPerOp, n.NsPerOp, tol, false)
				fmt.Printf("  workers=%-4d %s\n", n.Workers, s)
			}
		}
	}
	fmt.Printf("== evict_decision (ns/op, gated at %+.0f%%)\n", tol*100)
	for _, n := range newRep.Evict {
		for _, o := range oldRep.Evict {
			if o.Workers == n.Workers {
				s, bad := deltaLine(o.NsPerOp, n.NsPerOp, tol, true)
				check(fmt.Sprintf("workers=%-4d %s", n.Workers, s), bad)
			}
		}
	}
	fmt.Printf("== evict_decision_p99 (p99 ns, gated at %+.0f%%)\n", tol*100)
	for _, n := range newRep.EvictP99 {
		for _, o := range oldRep.EvictP99 {
			if o.Mode == n.Mode && o.Workers == n.Workers {
				s, bad := deltaLine(o.P99Ns, n.P99Ns, tol, true)
				check(fmt.Sprintf("%s/workers=%-2d %s  hit-ratio %.3f -> %.3f",
					n.Mode, n.Workers, s, o.ScoreCacheHitRatio, n.ScoreCacheHitRatio), bad)
			}
		}
	}
	fmt.Println("== end_to_end_sim (req/s, informational)")
	for _, n := range newRep.EndToEnd {
		for _, o := range oldRep.EndToEnd {
			if o.Workers == n.Workers {
				s, _ := deltaLine(o.ReqPerSec, n.ReqPerSec, tol, false)
				fmt.Printf("  workers=%-4d %s\n", n.Workers, s)
			}
		}
	}
	fmt.Println("== shard_sweep_server (req/s, informational)")
	for _, n := range newRep.ShardSweep {
		for _, o := range oldRep.ShardSweep {
			if o.Shards == n.Shards {
				s, _ := deltaLine(o.ReqPerSec, n.ReqPerSec, tol, false)
				fmt.Printf("  shards=%-4d  %s\n", n.Shards, s)
			}
		}
	}
	fmt.Printf("== pipelined_sweep (req/s, gated at -%.0f%%)\n", tol*100)
	for _, n := range newRep.PipelinedSweep {
		for _, o := range oldRep.PipelinedSweep {
			if o.Clients == n.Clients && o.Depth == n.Depth {
				s, bad := deltaLineUp(o.ReqPerSec, n.ReqPerSec, tol, true)
				check(fmt.Sprintf("clients=%-2d depth=%-3d %s  p99 %.0f -> %.0f ns",
					n.Clients, n.Depth, s, o.P99Ns, n.P99Ns), bad)
			}
		}
	}
	fmt.Printf("== admission_sweep (OHR, gated at -%.0f%%)\n", tol*100)
	for _, n := range newRep.AdmissionSweep {
		for _, o := range oldRep.AdmissionSweep {
			if o.Mode == n.Mode && o.Requests == n.Requests {
				s, bad := deltaLineUp(o.OHR*1000, n.OHR*1000, tol, true)
				check(fmt.Sprintf("%-11s %s (milli-OHR)  reject rate %.3f -> %.3f",
					n.Mode, s, o.RejectRate, n.RejectRate), bad)
			}
		}
	}
	if regressed {
		fmt.Printf("FAIL: a gated section (eviction latency, pipelined throughput, or admission OHR) regressed by more than %.0f%%\n", tol*100)
	} else {
		fmt.Println("OK: no gated regressions")
	}
	return regressed
}

func main() {
	outDir := flag.String("out", ".", "directory for the BENCH_<date>.json report")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts (first is the serial baseline)")
	quick := flag.Bool("quick", false, "smaller workloads for a fast smoke run")
	pipeDepths := flag.String("pipedepths", "1,16,64", "comma-separated pipeline depths for the pipelined sweep")
	pipeClients := flag.String("pipeclients", "2,8", "comma-separated client counts for the pipelined sweep")
	compare := flag.Bool("compare", false, "compare two reports: ravenbench -compare OLD.json NEW.json; exits 1 on >10% eviction-latency regression")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: ravenbench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ravenbench: %v\n", err)
			os.Exit(2)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ravenbench: %v\n", err)
			os.Exit(2)
		}
		if compareReports(oldRep, newRep, 0.10) {
			os.Exit(1)
		}
		return
	}

	parseInts := func(flagName, val string) []int {
		var out []int
		for _, f := range strings.Split(val, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "ravenbench: bad %s entry %q\n", flagName, f)
				os.Exit(2)
			}
			out = append(out, v)
		}
		return out
	}
	workers := parseInts("-workers", *workersFlag)
	depths := parseInts("-pipedepths", *pipeDepths)
	pclients := parseInts("-pipeclients", *pipeClients)

	kernelDur := 50 * time.Millisecond
	seqs, reqs := 256, 40000
	if *quick {
		kernelDur = 5 * time.Millisecond
		seqs, reqs = 64, 8000
	}

	rep := report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(os.Stderr, "ravenbench: %d cpus, gomaxprocs %d, workers %v\n",
		rep.NumCPU, rep.GoMaxProcs, workers)

	fmt.Fprintln(os.Stderr, "==> kernels (tuned vs scalar reference)")
	rep.Kernels = benchKernels(kernelDur)
	fmt.Fprintln(os.Stderr, "==> training epoch")
	rep.TrainEpoch = benchTrainEpoch(workers, seqs)
	fmt.Fprintln(os.Stderr, "==> eviction decision")
	rep.Evict = benchEvict(workers)
	fmt.Fprintln(os.Stderr, "==> eviction decision p99 (ScoreCache fast path)")
	decisions := 2000
	if *quick {
		decisions = 300
	}
	rep.EvictP99 = []decisionP99Result{
		benchEvictP99(false, decisions),
		benchEvictP99(true, decisions),
	}
	fmt.Fprintln(os.Stderr, "==> end-to-end simulation")
	rep.EndToEnd = benchEndToEnd(workers, reqs)
	fmt.Fprintln(os.Stderr, "==> server shard sweep")
	perClient := 4000
	if *quick {
		perClient = 500
	}
	rep.ShardSweep = benchShards([]int{1, 2, 4, 8}, 8, perClient)
	fmt.Fprintln(os.Stderr, "==> server pipelined sweep (binary protocol)")
	rep.PipelinedSweep = benchPipelined(pclients, depths, perClient)
	fmt.Fprintln(os.Stderr, "==> admission sweep (admit-all vs doorkeeper vs learned)")
	admReqs := 60000
	if *quick {
		admReqs = 15000
	}
	rep.AdmissionSweep = benchAdmissionSweep(admReqs)

	path := filepath.Join(*outDir, "BENCH_"+rep.Date+".json")
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ravenbench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ravenbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	_, _ = os.Stdout.Write(buf)
	fmt.Fprintf(os.Stderr, "ravenbench: wrote %s\n", path)
}
