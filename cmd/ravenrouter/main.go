// Command ravenrouter fronts a fleet of ravencached nodes with the
// fault-tolerant cluster tier (internal/cluster): a deterministic
// consistent-hash ring routes every key to its owner, per-node circuit
// breakers and PING health probes eject dead nodes and re-admit
// recovered ones, failed requests retry with backoff and fail over to
// ring replicas, and hot keys (count-min sketch top-k) are replicated
// to their first successor so a single node death doesn't cold-start
// the head of the popularity distribution.
//
// The router speaks the same wire protocols as ravencached itself —
// text and binary, pipelined, with GETQ/PING — because it embeds the
// same hardened server front-end; clients cannot tell a router from a
// node. STATS aggregates the router's own view; METRICS additionally
// serves the router.* health/failover metrics and per-node latency
// histograms.
//
// Usage:
//
//	ravenrouter -addr :7071 -cluster 127.0.0.1:7072,127.0.0.1:7073
//
// Exit status is non-zero when the listener cannot be bound or the
// accept loop dies permanently.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"raven/internal/cluster"
	"raven/internal/server"
)

func main() {
	os.Exit(run())
}

// run carries the real main body so deferred cleanup (final stats,
// drain, router shutdown) executes before the process exits.
func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7071", "listen address")
		nodeList = flag.String("cluster", "", "comma-separated ravencached node addresses (required)")
		seed     = flag.Int64("seed", 42, "ring placement seed; all routers of a fleet must agree")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per member (0 = 128)")
		replicas = flag.Int("replicas", 0, "ring lookup fan-out: owner + failover successors (0 = 2)")

		timeout  = flag.Duration("timeout", 0, "per-backend-request timeout (0 = 250ms)")
		retries  = flag.Int("retries", 0, "extra attempts per request across replicas (0 = 2, negative = none)")
		backoff  = flag.Duration("backoff", 0, "initial retry backoff, doubling per attempt (0 = 5ms)")
		probe    = flag.Duration("probe", 0, "health-probe interval (0 = 250ms, negative = off)")
		failLim  = flag.Int("faillimit", 0, "consecutive failures per breaker rung (0 = 3)")
		halfOpen = flag.Duration("halfopen", 0, "cool-down before an ejected node is probed (0 = 1s)")
		hotFreq  = flag.Int("hotfreq", 0, "sketch estimate at which a key is replicated (0 = 16, negative = off)")
		pool     = flag.Int("pool", 0, "idle connections pooled per node (0 = 4)")

		maxConns     = flag.Int("maxconns", 0, "max concurrent client connections (0 = unlimited)")
		idleTimeout  = flag.Duration("idletimeout", 0, "per-request read deadline (0 = 2m default, negative = off)")
		writeTimeout = flag.Duration("writetimeout", 0, "per-response write deadline (0 = 30s default, negative = off)")
		drain        = flag.Duration("drain", 0, "graceful drain bound on shutdown (0 = 5s default)")
		readBuf      = flag.Int("readbuf", 0, "per-connection read buffer in bytes (0 = 16KiB default)")
		metricsEvery = flag.Duration("metricsevery", 0, "log a metrics snapshot line this often (0 = off)")
	)
	flag.Parse()

	var nodes []string
	for _, a := range strings.Split(*nodeList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodes = append(nodes, a)
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "ravenrouter: -cluster requires at least one node address")
		return 1
	}

	router, err := cluster.New(cluster.Config{
		Nodes:          nodes,
		Seed:           *seed,
		VNodes:         *vnodes,
		Replicas:       *replicas,
		RequestTimeout: *timeout,
		MaxRetries:     *retries,
		RetryBackoff:   *backoff,
		ProbeInterval:  *probe,
		FailLimit:      *failLim,
		HalfOpenAfter:  *halfOpen,
		HotKeyMinFreq:  *hotFreq,
		PoolSize:       *pool,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravenrouter:", err)
		return 1
	}
	srv, err := server.New(server.Config{
		Addr:         *addr,
		Backend:      router,
		Registry:     router.Metrics(), // router.* rides the same METRICS
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drain,
		ReadBuf:      *readBuf,
	})
	if err != nil {
		_ = router.Close()
		fmt.Fprintln(os.Stderr, "ravenrouter:", err)
		return 1
	}
	fmt.Printf("ravenrouter: fleet=%d replicas=%d ring=%016x listening on %s\n",
		len(nodes), router.Replicas(), router.Fingerprint(), srv.Addr())

	// Drain the front-end first (stats then reflect every served
	// request), then the router, then report.
	defer func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ravenrouter: close:", err)
		}
		if err := router.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ravenrouter: router close:", err)
		}
		st := srv.Stats()
		fmt.Printf("\nravenrouter: %d requests, OHR %.4f, BHR %.4f\n", st.Requests, st.OHR(), st.BHR())
		states := router.NodeStates()
		names := make([]string, 0, len(states))
		for n := range states {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("ravenrouter: node %s final state: %s\n", n, states[n])
		}
		fmt.Printf("ravenrouter: final metrics: %s\n", srv.Metrics().Line())
	}()

	stopTicker := make(chan struct{})
	defer close(stopTicker)
	if *metricsEvery > 0 {
		go func() {
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-stopTicker:
					return
				case <-t.C:
					fmt.Printf("ravenrouter: metrics: %s\n", srv.Metrics().Line())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("\nravenrouter: received %v, draining\n", got)
		return 0
	case <-srv.Fatal():
		fmt.Fprintln(os.Stderr, "ravenrouter: fatal:", srv.FatalErr())
		return 1
	}
}
