// Command ravenlint runs the repository's static-analysis rule set
// (internal/lint) over the module: determinism, concurrency-safety,
// library-hygiene, and interprocedural hot-path invariants that keep
// the paper's replay results reproducible and the eviction decision
// inside its latency budget. It is stdlib-only — no compiled export
// data, no third-party loaders.
//
// Usage:
//
//	ravenlint [flags] [pattern ...]
//
// Patterns are package patterns relative to the module root ("./...",
// "./internal/sim", "./internal/policy/..."); the default is "./...".
// Findings print as "file:line: [rule-id] message" and the exit status
// is 1 when any new finding (or baseline drift) is reported, 2 on
// usage or load errors. Output is deterministic: two consecutive runs
// over the same tree are byte-identical.
//
// Flags:
//
//	-rules            list rule IDs and one-line docs, then exit
//	-explain <rule>   print a rule's full documentation, then exit
//	-json             emit the machine-readable report on stdout
//	-tests            also lint _test.go files (concurrency rules only)
//	-typeerrs         print type-check diagnostics to stderr
//	-baseline <path>  baseline file ("none" disables; default:
//	                  .ravenlint-baseline.json at the module root,
//	                  used only when it exists)
//	-write-baseline <path>  write the current findings as a baseline
//	                  and exit 0
//
// Pre-existing findings live in the committed baseline: they are
// absorbed (and counted) instead of failing the run, while any NEW
// finding fails, and so does drift — a baseline entry with no matching
// finding means the debt was paid and the baseline must be
// regenerated with -write-baseline. Drift is only checked on
// whole-module runs; a partial-package run cannot tell "paid" from
// "not scanned".
//
// Individual sites are suppressed with a pragma on the same line or
// the line directly above, which must name the rule and a reason:
//
//	//lint:allow <rule-id> <reason...>
//
// When the whole module is linted, pragmas that suppress nothing are
// themselves reported (pragma-stale).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"raven/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list rule IDs and their documentation, then exit")
	explain := flag.String("explain", "", "print the full documentation of one rule, then exit")
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report on stdout")
	tests := flag.Bool("tests", false, "also lint _test.go files (go-loop-capture, lock-by-value)")
	typeErrs := flag.Bool("typeerrs", false, "print type-check diagnostics to stderr")
	baselinePath := flag.String("baseline", "", `baseline file; "none" disables, default is .ravenlint-baseline.json at the module root when present`)
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	flag.Parse()

	rules := lint.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-18s %s\n", r.ID, r.Doc)
		}
		return
	}
	if *explain != "" {
		for _, r := range rules {
			if r.ID != *explain {
				continue
			}
			fmt.Printf("%s — %s\n", r.ID, r.Doc)
			if r.Explain != "" {
				fmt.Printf("\n%s\n", r.Explain)
			}
			return
		}
		fatal(fmt.Errorf("unknown rule %q (see -rules for the list)", *explain))
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := lint.LoadModuleOpts(root, lint.LoadOptions{Tests: *tests})
	if err != nil {
		fatal(err)
	}
	pkgs, err := mod.Select(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *typeErrs {
		for _, p := range pkgs {
			for _, e := range p.TypeErrs {
				fmt.Fprintf(os.Stderr, "ravenlint: typecheck %s: %v\n", p.ImportPath, e)
			}
		}
	}

	// Stale-pragma detection is only sound when every package a pragma
	// could apply to was linted, i.e. the whole module was selected.
	wholeModule := len(pkgs) == len(mod.Pkgs)
	findings := lint.RunOpts(pkgs, rules, lint.Options{StalePragmas: wholeModule})

	if *writeBaseline != "" {
		if err := lint.NewBaseline(findings).Write(*writeBaseline); err != nil {
			fatal(err)
		}
		return
	}

	news := findings
	var drift []lint.BaselineEntry
	baselined := 0
	switch *baselinePath {
	case "none":
	case "":
		p := filepath.Join(root, lint.DefaultBaselineName)
		if _, statErr := os.Stat(p); statErr == nil {
			news, drift, baselined = applyBaseline(p, findings)
		}
	default:
		news, drift, baselined = applyBaseline(*baselinePath, findings)
	}
	// Drift ("this baseline entry no longer matches anything") is only
	// meaningful when every file the baseline covers was actually
	// linted; on a partial-package run the unscanned entries would all
	// look drifted. Baselined findings still absorb either way.
	if !wholeModule {
		drift = nil
	}

	if *jsonOut {
		data, err := lint.NewJSONReport(news, drift, baselined).Marshal()
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range news {
			fmt.Println(f)
		}
		for _, d := range drift {
			fmt.Printf("baseline drift: %d x %s: [%s] %s no longer found (regenerate with -write-baseline)\n",
				d.Count, d.File, d.Rule, d.Msg)
		}
	}
	if len(news) > 0 || len(drift) > 0 {
		fmt.Fprintf(os.Stderr, "ravenlint: %d new finding(s), %d drifted baseline entr(ies), %d baselined\n",
			len(news), len(drift), baselined)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ravenlint: %v\n", err)
	os.Exit(2)
}

func applyBaseline(path string, findings []lint.Finding) ([]lint.Finding, []lint.BaselineEntry, int) {
	b, err := lint.LoadBaseline(path)
	if err != nil {
		fatal(err)
	}
	news, drift := b.Apply(findings)
	return news, drift, len(findings) - len(news)
}
