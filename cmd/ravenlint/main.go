// Command ravenlint runs the repository's static-analysis rule set
// (internal/lint) over the module: determinism, concurrency-safety,
// and library-hygiene invariants that keep the paper's replay results
// reproducible. It is stdlib-only — no compiled export data, no
// third-party loaders.
//
// Usage:
//
//	ravenlint [-rules] [pattern ...]
//
// Patterns are package patterns relative to the module root ("./...",
// "./internal/sim", "./internal/policy/..."); the default is "./...".
// Findings print as "file:line: [rule-id] message" and the exit status
// is 1 when any finding is reported, 2 on usage or load errors.
//
// Individual sites are suppressed with a pragma on the same line or
// the line directly above, which must name the rule and a reason:
//
//	//lint:allow <rule-id> <reason...>
package main

import (
	"flag"
	"fmt"
	"os"

	"raven/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list rule IDs and their documentation, then exit")
	typeErrs := flag.Bool("typeerrs", false, "print type-check diagnostics to stderr")
	flag.Parse()

	rules := lint.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-18s %s\n", r.ID, r.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := mod.Select(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *typeErrs {
		for _, p := range pkgs {
			for _, e := range p.TypeErrs {
				fmt.Fprintf(os.Stderr, "ravenlint: typecheck %s: %v\n", p.ImportPath, e)
			}
		}
	}

	findings := lint.Run(pkgs, rules)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ravenlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ravenlint: %v\n", err)
	os.Exit(2)
}
