// Command raven-sim replays a cache trace through one or more eviction
// policies and reports hit ratios, latency, traffic and eviction-time
// statistics.
//
// Usage:
//
//	raven-sim -trace wiki18 -policies raven,lrb,lru -cachefrac 0.02
//	raven-sim -synthetic uniform -requests 200000 -capacity 100
//	raven-sim -file trace.txt -policies lru -capacity 1048576
//
// Traces come from the built-in production-like generators (-trace),
// the synthetic renewal generators (-synthetic), or a "time key size"
// file (-file).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"raven/internal/cache"
	"raven/internal/core"
	"raven/internal/policy"
	"raven/internal/sim"
	"raven/internal/trace"
)

func main() {
	var (
		prodName  = flag.String("trace", "", "production-like preset: wiki18|wiki19|wikimedia19|twitter17|twitter29|twitter52")
		synthName = flag.String("synthetic", "", "synthetic interarrival law: poisson|uniform|pareto")
		file      = flag.String("file", "", "trace file in 'time key size' format")
		requests  = flag.Int("requests", 200000, "synthetic trace length")
		objects   = flag.Int("objects", 1000, "synthetic object count")
		varSizes  = flag.Bool("varsizes", false, "synthetic: variable object sizes U(10,1600)")
		scale     = flag.Float64("scale", 0.5, "production trace scale")
		policies  = flag.String("policies", "lru,lfuda,lrb,lhr,raven", "comma-separated policy names")
		capacity  = flag.Int64("capacity", 0, "cache capacity in bytes (overrides -cachefrac)")
		cacheFrac = flag.Float64("cachefrac", 0.02, "cache capacity as a fraction of unique bytes")
		warmup    = flag.Float64("warmup", 0.3, "fraction of requests excluded from statistics")
		netKind   = flag.String("net", "", "latency model: cdn|memory|'' (off)")
		workers   = flag.Int("workers", 1, "Raven training/eviction goroutines (results are bit-identical for any value)")
		shards    = flag.Int("shards", 1, "cache shards, one policy instance each (1 = plain engine; rounded up to a power of two)")
		ckptDir   = flag.String("checkpoint", "", "Raven checkpoint directory: resume from the newest valid generation, save after trainings")
		ckptEvery = flag.Int("checkpoint-every", 1, "save a checkpoint generation every N completed trainings")
		seed      = flag.Int64("seed", 42, "random seed")
		listPols  = flag.Bool("list", false, "list available policies and exit")

		// Research defaults: the simulator keeps the fast path and the
		// SLO clock off so replays stay bit-identical run to run; the
		// serving binary (ravencached) defaults them on.
		admitMode  = flag.String("admit", "", "admission front-end: off|doorkeeper|learned (learned needs a reuse-predicting policy: raven/raven-ohr)")
		prefetchHz = flag.Int64("prefetch-horizon", 0, "Raven prefetch: queue evicted objects predicted to return within this many trace ticks (0 = off)")

		scoreCache  = flag.Bool("score-cache", false, "Raven cached-score eviction fast path")
		inference32 = flag.Bool("inference32", false, "Raven float32 inference kernels on the fast path (training stays float64)")
		budget      = flag.Duration("decision-budget", 0, "Raven per-eviction-decision deadline; overruns fall back to LRU (0 = off)")
	)
	flag.Parse()

	if *listPols {
		fmt.Println(strings.Join(policy.Names(), "\n"))
		return
	}

	tr, err := loadTrace(*prodName, *synthName, *file, *requests, *objects, *varSizes, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raven-sim:", err)
		os.Exit(1)
	}
	cap := *capacity
	if cap == 0 {
		cap = int64(float64(tr.UniqueBytes()) * *cacheFrac)
		if cap < 64 {
			cap = 64
		}
	}
	opts := sim.Options{Capacity: cap, WarmupFrac: *warmup, Seed: *seed}
	switch *netKind {
	case "cdn":
		opts.Net = sim.CDNModel()
	case "memory":
		opts.Net = sim.InMemoryModel()
	case "":
	default:
		fmt.Fprintf(os.Stderr, "raven-sim: unknown -net %q\n", *netKind)
		os.Exit(1)
	}

	fmt.Printf("trace=%s requests=%d objects=%d uniqueBytes=%d capacity=%d\n",
		tr.Name, tr.Len(), tr.UniqueObjects(), tr.UniqueBytes(), cap)
	fmt.Printf("%-18s %8s %8s %12s %12s %10s\n", "policy", "OHR", "BHR", "evictions", "evict(ns)", "wall")
	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		popts := policy.Options{
			Capacity:        cap,
			TrainWindow:     tr.Duration() / 8,
			Seed:            *seed,
			Workers:         *workers,
			CheckpointDir:   *ckptDir,
			CheckpointEvery: *ckptEvery,
			ScoreCache:      *scoreCache,
			Inference32:     *inference32,
			DecisionBudget:  *budget,
			Admission:       policy.AdmissionOptions{Mode: *admitMode},
			Prefetch:        policy.PrefetchOptions{Horizon: *prefetchHz},
		}
		factory, err := policy.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raven-sim:", err)
			os.Exit(1)
		}
		res, err := sim.RunSharded(tr, name, *shards, factory.PerShard(popts, *shards), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raven-sim:", err)
			os.Exit(1)
		}
		label := name
		if res.Shards > 1 {
			label = fmt.Sprintf("%s[x%d]", name, res.Shards)
		}
		fmt.Printf("%-18s %8.4f %8.4f %12d %12.0f %10v\n",
			label, res.OHR, res.BHR, res.Stats.Evictions, res.EvictionNanos.Mean, res.WallTime.Round(1e6))
		for shard, p := range res.PolicyState.([]cache.Policy) {
			r, ok := cache.Unwrap(p).(*core.Raven)
			if !ok {
				continue
			}
			if *ckptDir != "" {
				if r.CkptResume.Path != "" {
					fmt.Printf("  shard%d: resumed checkpoint generation %d (%s), %d corrupt skipped\n",
						shard, r.CkptResume.Seq, r.CkptResume.Path, r.CkptResume.CorruptSkipped)
				} else if r.CkptResume.CorruptSkipped > 0 {
					fmt.Printf("  shard%d: no valid checkpoint (%d corrupt skipped), starting cold\n",
						shard, r.CkptResume.CorruptSkipped)
				}
			}
			if n := len(r.HealthLog); n > 0 {
				fmt.Printf("  shard%d: health=%s transitions=%d rollbacks=%d\n",
					shard, r.Health(), n, countRollbacks(r.TrainStats))
			}
			if r.CkptErr != nil {
				fmt.Fprintf(os.Stderr, "raven-sim: shard%d checkpoint: %v\n", shard, r.CkptErr)
			}
		}
		if opts.Net != nil {
			fmt.Printf("  avgLat=%v p90=%v backendMB=%.1f throughput=%.2fGbps/%.1fKRPS\n",
				res.Net.AvgLatency, res.Net.P90Latency,
				float64(res.Net.BackendBytes)/(1<<20),
				res.Net.ThroughputGbps, res.Net.ThroughputKRPS)
		}
	}
}

// countRollbacks tallies guard-tripped training windows.
func countRollbacks(recs []core.TrainRecord) int {
	n := 0
	for _, rec := range recs {
		if rec.RolledBack {
			n++
		}
	}
	return n
}

func loadTrace(prod, synth, file string, requests, objects int, varSizes bool, scale float64, seed int64) (*trace.Trace, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadCSV(f, file)
	case prod != "":
		return trace.ProductionTrace(trace.ProductionPreset(prod), scale, seed), nil
	case synth != "":
		var d trace.Interarrival
		switch synth {
		case "poisson":
			d = trace.Poisson
		case "uniform":
			d = trace.Uniform
		case "pareto":
			d = trace.Pareto
		default:
			return nil, fmt.Errorf("unknown synthetic law %q", synth)
		}
		return trace.Synthetic(trace.SynthConfig{
			Objects: objects, Requests: requests, Interarrival: d,
			VariableSizes: varSizes, Seed: seed,
		}), nil
	default:
		return nil, fmt.Errorf("one of -trace, -synthetic, -file is required")
	}
}
