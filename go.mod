module raven

go 1.22
